"""Columnar store v2: codec round-trips, recovery, maintenance.

The acceptance bar (ISSUE 5): **byte-identical reads** — for any
JSON-typed payload, ``put``/``put_many``/``get``/``merge_from``/
``compact`` round-trip to the canonically identical document — plus
idempotent merges and index-rebuild recovery after a torn final block.
The round-trip tests are property-based over a seeded-random payload
generator, so every run explores the same few hundred arbitrary
payload shapes deterministically.
"""

from __future__ import annotations

import json
import os
import random

import pytest

from repro.harness.store import (
    STORE_ENV,
    ColumnarStore,
    decode_block,
    encode_block,
    open_store,
)
from repro.harness.sweep import (
    SCHEMA_VERSION,
    ResultStore,
    make_model_task,
    run_sweep,
    simulator_version,
)


def canon(doc) -> str:
    """The byte-identity yardstick: canonical JSON serialization."""
    return json.dumps(doc, sort_keys=True)


# ----------------------------------------------------------------------
# seeded-random payload generator (deterministic "arbitrary" payloads)
# ----------------------------------------------------------------------
def rand_scalar(rng: random.Random):
    pick = rng.randrange(8)
    if pick == 0:
        return None
    if pick == 1:
        return rng.random() < 0.5
    if pick == 2:
        return rng.randint(-10**6, 10**6)
    if pick == 3:  # beyond 64-bit: must survive via the JSON remainder
        return rng.choice([-1, 1]) * rng.randint(1 << 63, 1 << 80)
    if pick == 4:
        return rng.uniform(-1e9, 1e9)
    if pick == 5:  # edge floats incl. non-finite (JSON-remainder path)
        return rng.choice([0.0, -0.0, 1e-300, -1e308,
                           float("inf"), float("-inf")])
    if pick == 6:
        return f"s{rng.randrange(1000)}"
    return {"nested": [rng.randrange(10), "x", None]}


def rand_array(rng: random.Random):
    def elem():
        r = rng.random()
        if r < 0.1:  # un-packable element: whole array stays JSON
            return rng.randint(1 << 63, 1 << 70)
        if r < 0.55:
            return rng.randint(-1000, 1000)
        return rng.uniform(-1e6, 1e6)
    return [elem() for _ in range(rng.randrange(1, 40))]


def rand_payload(rng: random.Random, i: int) -> dict:
    doc = {"schema": SCHEMA_VERSION, "sim": "a" * 16,
           "key": f"key{i:05d}", "task": {"label": f"t{i}", "seed": i}}
    for sect in ("metrics", "extra", "series", "oddball"):
        if rng.random() < 0.85:
            doc[sect] = {
                f"f{j}": rand_array(rng) if rng.random() < 0.4
                else rand_scalar(rng)
                for j in range(rng.randrange(7))}
    if rng.random() < 0.25:
        doc["top_scalar"] = rand_scalar(rng)
    return doc


def rand_batch(seed: int, n: int):
    rng = random.Random(seed)
    return [(f"key{i:05d}", rand_payload(rng, i)) for i in range(n)]


class TestBlockCodec:
    @pytest.mark.parametrize("seed", [1, 7, 42, 2026])
    def test_roundtrip_is_canonically_identical(self, seed):
        batch = rand_batch(seed, 50)
        decoded, entries = decode_block(encode_block(batch))
        assert [k for k, _ in decoded] == [k for k, _ in batch]
        for (_, original), (_, back) in zip(batch, decoded):
            assert canon(original) == canon(back)
        assert entries == [None] * len(batch)

    def test_int_float_distinction_survives(self):
        payload = {"metrics": {"i": 3, "f": 3.0, "nz": -0.0},
                   "series": {"mixed": [1, 2.0, -3, 0.5]}}
        (_, back), = decode_block(encode_block([("k", payload)]))[0]
        assert canon(payload) == canon(back)
        assert isinstance(back["metrics"]["i"], int)
        assert isinstance(back["metrics"]["f"], float)
        assert [type(v) for v in back["series"]["mixed"]] == \
            [int, float, int, float]

    def test_entries_travel_with_records(self):
        batch = rand_batch(3, 4)
        entries = [{"label": f"l{i}", "origin": "shard-1/2"} if i % 2
                   else None for i in range(4)]
        _, back = decode_block(encode_block(batch, entries))
        assert back == entries


class TestRoundTrip:
    def test_put_get_is_byte_identical(self, tmp_path):
        store = ColumnarStore(str(tmp_path))
        batch = rand_batch(11, 60)
        for key, payload in batch[:30]:
            store.put(key, payload)
        store.put_many(batch[30:])
        for key, payload in batch:
            assert canon(store.get(key)) == canon(payload)

    def test_reopen_rebuilds_index_from_segment(self, tmp_path):
        batch = rand_batch(13, 40)
        ColumnarStore(str(tmp_path)).put_many(batch)
        reopened = ColumnarStore(str(tmp_path))
        assert reopened.keys() == sorted(k for k, _ in batch)
        for key, payload in batch:
            assert canon(reopened.get(key)) == canon(payload)

    def test_get_returns_an_isolated_copy(self, tmp_path):
        store = ColumnarStore(str(tmp_path))
        payload = {"schema": SCHEMA_VERSION, "metrics": {"a": 1},
                   "extra": {}}
        store.put("k", payload)
        store.get("k")["metrics"]["a"] = 999
        assert store.get("k")["metrics"]["a"] == 1

    def test_merge_is_idempotent_and_identical(self, tmp_path):
        batch = rand_batch(17, 25)
        src = ColumnarStore(str(tmp_path / "src"))
        src.put_many(batch)
        dest = ColumnarStore(str(tmp_path / "dest"))
        assert sorted(dest.merge_from(src)) == sorted(k for k, _ in batch)
        assert dest.merge_from(src) == []
        for key, payload in batch:
            assert canon(dest.get(key)) == canon(payload)

    def test_merge_from_json_store_and_back(self, tmp_path):
        """Cross-format merging, both directions."""
        batch = rand_batch(19, 10)
        json_store = ResultStore(str(tmp_path / "v1"))
        json_store.put_many(batch[:5])
        v2 = ColumnarStore(str(tmp_path / "v2"))
        v2.put_many(batch[5:])
        merged = ColumnarStore(str(tmp_path / "m"))
        assert len(merged.merge_from(json_store)) == 5
        assert len(merged.merge_from(v2)) == 5
        back_to_json = ResultStore(str(tmp_path / "back"))
        assert len(back_to_json.merge_from(merged)) == 10
        for key, payload in batch:
            assert canon(back_to_json.get(key)) == canon(payload)

    def test_compact_preserves_reads(self, tmp_path):
        batch = rand_batch(23, 50)
        store = ColumnarStore(str(tmp_path))
        for key, payload in batch:  # one frame per record
            store.put(key, payload)
        stats = store.compact()
        assert stats["records_written"] == 50
        assert stats["after"]["blocks"] == 1
        reopened = ColumnarStore(str(tmp_path))
        for key, payload in batch:
            assert canon(reopened.get(key)) == canon(payload)
        assert reopened.verify()["ok"]


class TestJsonReadCompat:
    def seed_json_store(self, tmp_path, n=8):
        batch = rand_batch(29, n)
        ResultStore(str(tmp_path)).put_many(batch)
        return batch

    def test_v2_serves_legacy_artifacts(self, tmp_path):
        batch = self.seed_json_store(tmp_path)
        store = ColumnarStore(str(tmp_path))
        assert store.keys() == sorted(k for k, _ in batch)
        for key, payload in batch:
            assert canon(store.get(key)) == canon(payload)

    def test_mixed_store_unions_keys(self, tmp_path):
        batch = self.seed_json_store(tmp_path)
        store = ColumnarStore(str(tmp_path))
        extra = rand_batch(31, 3)
        store.put_many([(f"new{i}", p) for i, (_, p) in enumerate(extra)])
        assert len(store.keys()) == len(batch) + 3

    def test_compact_keeps_unreadable_json_artifacts(self, tmp_path):
        """Regression (code review): a legacy artifact compact cannot
        *read* was never absorbed, so it must survive the rewrite
        instead of being deleted as if it had been."""
        batch = self.seed_json_store(tmp_path, n=4)
        victim = os.path.join(str(tmp_path),
                              f"{batch[0][0]}.json")
        with open(victim, "w") as fh:
            fh.write("{ not json")  # unreadable at compact time
        store = ColumnarStore(str(tmp_path))
        stats = store.compact()
        assert stats["json_absorbed"] == len(batch) - 1
        assert os.path.exists(victim)  # never absorbed, never deleted
        for key, payload in batch[1:]:
            assert canon(store.get(key)) == canon(payload)

    def test_compact_absorbs_and_deletes_json(self, tmp_path):
        batch = self.seed_json_store(tmp_path)
        store = ColumnarStore(str(tmp_path))
        stats = store.compact()
        assert stats["json_absorbed"] == len(batch)
        leftovers = [n for n in os.listdir(str(tmp_path))
                     if n.endswith(".json") and n != "manifest.json"]
        assert leftovers == []
        for key, payload in batch:
            assert canon(store.get(key)) == canon(payload)


class TestRecovery:
    def two_frame_store(self, tmp_path):
        store = ColumnarStore(str(tmp_path))
        first, second = rand_batch(37, 6)[:3], rand_batch(41, 6)[3:]
        store.put_many(first)
        size_after_first = os.path.getsize(
            os.path.join(str(tmp_path), ColumnarStore.SEGMENT))
        store.put_many(second)
        size_full = os.path.getsize(
            os.path.join(str(tmp_path), ColumnarStore.SEGMENT))
        return store, first, second, size_after_first, size_full

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_truncated_final_block_recovers(self, tmp_path, seed):
        """Index rebuild after a crash mid-append: everything before
        the torn block survives, verify flags the tail, and the next
        append truncates it away (property over random cut points)."""
        _store, first, second, s1, s2 = self.two_frame_store(tmp_path)
        seg = os.path.join(str(tmp_path), ColumnarStore.SEGMENT)
        cut = random.Random(seed).randrange(s1 + 1, s2)
        with open(seg, "r+b") as fh:
            fh.truncate(cut)
        reopened = ColumnarStore(str(tmp_path))
        assert reopened.keys() == sorted(k for k, _ in first)
        for key, payload in first:
            assert canon(reopened.get(key)) == canon(payload)
        report = reopened.verify()
        assert not report["ok"] and report["truncated_tail_bytes"] > 0
        # the next write heals the file
        heal_key, heal_payload = rand_batch(43, 1)[0]
        reopened.put(heal_key, heal_payload)
        healed = ColumnarStore(str(tmp_path))
        assert healed.verify()["ok"]
        assert canon(healed.get(heal_key)) == canon(heal_payload)

    def test_corrupt_crc_detected(self, tmp_path):
        _store, first, _second, s1, _s2 = self.two_frame_store(tmp_path)
        seg = os.path.join(str(tmp_path), ColumnarStore.SEGMENT)
        with open(seg, "r+b") as fh:  # flip a byte inside frame 2
            fh.seek(s1 + 20)
            byte = fh.read(1)
            fh.seek(s1 + 20)
            fh.write(bytes([byte[0] ^ 0xFF]))
        reopened = ColumnarStore(str(tmp_path))
        # scan stops at the corrupt frame; frame 1 still serves
        assert set(reopened.keys()) == {k for k, _ in first}
        assert not reopened.verify()["ok"]
        # the statistics surface must not hide the corruption
        assert reopened.stats()["tail_dirty"]

    def test_torn_file_header_heals_on_next_write(self, tmp_path):
        """Regression (code review): a crash during the very first
        append can leave a partial file magic; the next write must
        truncate to offset 0 and re-create the header, not append
        valid-but-unreachable frames after the garbage."""
        seg = os.path.join(str(tmp_path), ColumnarStore.SEGMENT)
        os.makedirs(str(tmp_path), exist_ok=True)
        with open(seg, "wb") as fh:
            fh.write(b"REP")  # torn mid-magic
        store = ColumnarStore(str(tmp_path))
        key, payload = rand_batch(53, 1)[0]
        store.put(key, payload)
        reopened = ColumnarStore(str(tmp_path))
        assert canon(reopened.get(key)) == canon(payload)
        assert reopened.verify()["ok"]

    def test_mid_file_magic_marker_is_skipped(self, tmp_path):
        """Regression (code review): two processes racing the first
        append can each prepend FILE_MAGIC; a mid-file magic must read
        as an 8-byte skip, not brick every later frame."""
        from repro.harness.store import FILE_MAGIC, _frame_bytes
        batch = rand_batch(59, 2)
        seg = os.path.join(str(tmp_path), ColumnarStore.SEGMENT)
        os.makedirs(str(tmp_path), exist_ok=True)
        with open(seg, "wb") as fh:  # the raced interleaving
            fh.write(FILE_MAGIC + _frame_bytes(batch[:1], [None]))
            fh.write(FILE_MAGIC + _frame_bytes(batch[1:], [None]))
        store = ColumnarStore(str(tmp_path))
        assert store.keys() == sorted(k for k, _ in batch)
        for key, payload in batch:
            assert canon(store.get(key)) == canon(payload)
        assert store.verify()["ok"]

    def test_stale_tail_flag_does_not_truncate_external_heal(
            self, tmp_path):
        """Regression (code review): A sees a torn tail; B heals it
        and appends; A's next write must re-validate instead of
        truncating B's committed frames on the stale flag."""
        _store, first, _second, s1, _s2 = self.two_frame_store(tmp_path)
        seg = os.path.join(str(tmp_path), ColumnarStore.SEGMENT)
        with open(seg, "r+b") as fh:
            fh.truncate(s1 + 5)  # torn second frame
        a = ColumnarStore(str(tmp_path))
        assert a.keys() == sorted(k for k, _ in first)  # tail flagged
        healer_payload = dict(rand_payload(random.Random(61), 61),
                              key="healer-key")
        b = ColumnarStore(str(tmp_path))
        b.put("healer-key", healer_payload)  # B truncates + appends
        a_payload = dict(rand_payload(random.Random(67), 67),
                         key="writer-key")
        a.put("writer-key", a_payload)  # must NOT destroy B's record
        final = ColumnarStore(str(tmp_path))
        assert canon(final.get("healer-key")) == canon(healer_payload)
        assert canon(final.get("writer-key")) == canon(a_payload)
        assert final.verify()["ok"]

    def test_stale_tail_survives_external_compact_rewrite(
            self, tmp_path):
        """Regression (code review): compact can *replace* the segment
        with a larger file (absorbing legacy JSON), so a reader whose
        scan offset predates the rewrite lands mid-frame; its next
        write must re-validate from offset 0, not truncate the
        compacted file at the stale offset."""
        _store, first, _second, s1, _s2 = self.two_frame_store(tmp_path)
        seg = os.path.join(str(tmp_path), ColumnarStore.SEGMENT)
        with open(seg, "r+b") as fh:
            fh.truncate(s1 + 5)  # torn second frame
        # legacy JSON artifacts make the compacted segment larger
        json_batch = [(f"legacy{i:03d}",
                       dict(payload, key=f"legacy{i:03d}"))
                      for i, (_k, payload) in enumerate(rand_batch(73, 8))]
        ResultStore(str(tmp_path)).put_many(json_batch)
        a = ColumnarStore(str(tmp_path))
        assert sorted(a.keys()) > []  # a has scanned: tail flagged
        b = ColumnarStore(str(tmp_path))
        b.compact()
        assert os.path.getsize(seg) > s1 + 5  # the rewrite grew it
        a_payload = dict(rand_payload(random.Random(79), 79),
                         key="post-key")
        a.put("post-key", a_payload)
        final = ColumnarStore(str(tmp_path))
        for key, _payload in first:
            assert final.get(key) is not None  # compacted records live
        for key, payload in json_batch:
            assert canon(final._read_raw(key)) == canon(payload)
        assert canon(final.get("post-key")) == canon(a_payload)
        assert final.verify()["ok"]

    def test_block_cache_is_bounded(self, tmp_path):
        """Regression (code review): the decoded-payload cache is an
        LRU, not the whole store resident forever."""
        from repro.harness.store import BLOCK_CACHE_BLOCKS
        store = ColumnarStore(str(tmp_path))
        batch = rand_batch(71, BLOCK_CACHE_BLOCKS + 20)
        for key, payload in batch:  # one block per record
            store.put(key, payload)
        assert len(store._blocks) <= BLOCK_CACHE_BLOCKS
        reopened = ColumnarStore(str(tmp_path))
        for key, payload in batch:  # evicted blocks re-load from disk
            assert canon(reopened.get(key)) == canon(payload)
        assert len(reopened._blocks) <= BLOCK_CACHE_BLOCKS

    def test_non_segment_file_is_tolerated(self, tmp_path):
        seg = os.path.join(str(tmp_path), ColumnarStore.SEGMENT)
        os.makedirs(str(tmp_path), exist_ok=True)
        with open(seg, "wb") as fh:
            fh.write(b"this is not a segment file at all")
        store = ColumnarStore(str(tmp_path))
        assert store.keys() == []
        assert not store.verify()["ok"]


class TestMaintenance:
    def test_duplicate_records_latest_wins(self, tmp_path):
        store = ColumnarStore(str(tmp_path), fresh=True)
        old = {"schema": SCHEMA_VERSION, "metrics": {"v": 1}, "extra": {}}
        new = {"schema": SCHEMA_VERSION, "metrics": {"v": 2}, "extra": {}}
        store.put("k", old)
        store.put("k", new)
        assert store._read("k")["metrics"]["v"] == 2
        report = store.verify()
        assert report["duplicate_records"] == 1
        store.compact()
        assert store.verify()["duplicate_records"] == 0
        assert store._read("k")["metrics"]["v"] == 2

    def test_fresh_store_misses_but_persists(self, tmp_path):
        store = ColumnarStore(str(tmp_path), fresh=True)
        payload = {"schema": SCHEMA_VERSION, "metrics": {}, "extra": {}}
        store.put("k", payload)
        assert store.get("k") is None
        assert ColumnarStore(str(tmp_path)).get("k") is not None

    def test_prune_keep_set_rewrites_segment(self, tmp_path):
        batch = rand_batch(47, 10)
        store = ColumnarStore(str(tmp_path))
        store.put_many(batch)
        keep = sorted(k for k, _ in batch)[:4]
        removed = store.prune(keep=keep)
        assert sorted(removed) == sorted(k for k, _ in batch
                                         if k not in keep)
        reopened = ColumnarStore(str(tmp_path))
        assert reopened.keys() == keep
        assert reopened.verify()["ok"]

    def test_prune_stale_sim_and_schema(self, tmp_path):
        store = ColumnarStore(str(tmp_path))
        live = {"schema": SCHEMA_VERSION, "sim": simulator_version(),
                "metrics": {}, "extra": {}}
        stale_sim = {"schema": SCHEMA_VERSION, "sim": "0" * 16,
                     "metrics": {}, "extra": {}}
        stale_schema = {"schema": 1, "sim": simulator_version(),
                        "metrics": {}, "extra": {}}
        store.put_many([("live", live), ("oldsim", stale_sim),
                        ("oldschema", stale_schema)])
        assert sorted(store.prune()) == ["oldschema", "oldsim"]
        assert ColumnarStore(str(tmp_path)).keys() == ["live"]

    @pytest.mark.parametrize("store_cls", [ResultStore, ColumnarStore],
                             ids=["json", "columnar"])
    def test_prune_drops_orphaned_manifest_entries(self, tmp_path,
                                                   store_cls):
        """Regression (ISSUE 5): read-repair synthesizes entries for
        artifacts missing from the index, but an entry whose artifact
        vanished used to survive prune() unless something else was
        removed in the same call."""
        store = store_cls(str(tmp_path))
        live = {"schema": SCHEMA_VERSION, "sim": simulator_version(),
                "metrics": {}, "extra": {}}
        store.put("live", live)
        store.repair_manifest()
        # orphan an entry by hand: the artifact is gone, the entry stays
        manifest = store._read_index()
        manifest["ghost"] = {"label": "gone", "seed": 1,
                             "schema": SCHEMA_VERSION,
                             "sim": simulator_version(),
                             "written_at": 0.0}
        store._write_json(os.path.join(str(tmp_path), store.MANIFEST),
                          manifest)
        assert store.prune() == []          # nothing stale on disk...
        assert "ghost" not in store._read_index()  # ...orphan dropped
        assert "live" in store._read_index()

    @pytest.mark.parametrize("store_cls", [ResultStore, ColumnarStore],
                             ids=["json", "columnar"])
    def test_manifest_read_repairs_missing_entries(self, tmp_path,
                                                   store_cls):
        """The reverse direction: an artifact the index never heard of
        gets an entry synthesized on read (pre-existing behaviour,
        pinned here beside its new counterpart)."""
        store = store_cls(str(tmp_path))
        store.put("k", {"schema": SCHEMA_VERSION,
                        "sim": simulator_version(),
                        "task": {"label": "l", "seed": 3},
                        "metrics": {}, "extra": {}})
        os.remove(os.path.join(str(tmp_path), store.MANIFEST)) \
            if os.path.exists(os.path.join(str(tmp_path),
                                           store.MANIFEST)) else None
        manifest = store.manifest()
        assert manifest["k"]["label"] == "l"
        assert manifest["k"]["seed"] == 3


class TestOpenStorePolicy:
    def test_default_is_columnar(self, tmp_path, monkeypatch):
        monkeypatch.delenv(STORE_ENV, raising=False)
        assert isinstance(open_store(str(tmp_path)), ColumnarStore)

    def test_json_forces_legacy(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_ENV, "json")
        store = open_store(str(tmp_path))
        assert type(store) is ResultStore

    def test_explicit_columnar(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_ENV, "columnar")
        assert isinstance(open_store(str(tmp_path)), ColumnarStore)

    def test_unknown_value_rejected(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_ENV, "parquet")
        with pytest.raises(ValueError, match="REPRO_STORE"):
            open_store(str(tmp_path))

    def test_kwargs_pass_through(self, tmp_path, monkeypatch):
        monkeypatch.delenv(STORE_ENV, raising=False)
        store = open_store(str(tmp_path), origin="shard-1/4", fresh=True)
        assert store.origin == "shard-1/4" and store.fresh


class TestSweepOnV2:
    def tasks(self):
        return [make_model_task("footprint", seed=1, buffer_size=b)
                for b in (1, 4, 8)]

    def test_run_sweep_persists_and_caches(self, tmp_path):
        store = ColumnarStore(str(tmp_path))
        first = run_sweep(self.tasks(), store=store)
        assert first.executed == 3
        again = run_sweep(self.tasks(), store=ColumnarStore(str(tmp_path)))
        assert again.executed == 0 and again.cached == 3
        assert {r.key: canon((r.metrics, r.extra)) for r in first} == \
            {r.key: canon((r.metrics, r.extra)) for r in again}

    def test_v2_payloads_match_json_store(self, tmp_path):
        json_store = ResultStore(str(tmp_path / "v1"))
        v2_store = ColumnarStore(str(tmp_path / "v2"))
        run_sweep(self.tasks(), store=json_store)
        run_sweep(self.tasks(), store=v2_store)
        assert json_store.keys() == v2_store.keys()
        for key in json_store.keys():
            assert canon(json_store.get(key)) == canon(v2_store.get(key))
