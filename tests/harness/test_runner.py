"""Harness: scenarios, failure hooks, matrix running."""

from __future__ import annotations

import pytest

from repro.harness import (
    Scenario,
    ber_hook,
    degrade_cables_hook,
    degrade_fraction_hook,
    fail_cables_hook,
    fail_fraction_hook,
    run_collective,
    run_lb_matrix,
    run_mixed_traffic,
    run_synthetic,
    run_trace,
)
from repro.sim.topology import TopologyParams


def topo(**kw) -> TopologyParams:
    kw.setdefault("n_hosts", 8)
    kw.setdefault("hosts_per_t0", 4)
    return TopologyParams(**kw)


def scenario(lb="reps", **kw) -> Scenario:
    kw.setdefault("topo", topo())
    kw.setdefault("max_us", 20_000.0)
    return Scenario(lb=lb, **kw)


class TestSynthetic:
    @pytest.mark.parametrize("pattern", ["incast", "permutation", "tornado"])
    def test_patterns_run_to_completion(self, pattern):
        res = run_synthetic(scenario(), pattern, 64 * 1024, fan_in=4)
        m = res.metrics
        assert m.flows_completed == m.flows_total > 0

    def test_unknown_pattern(self):
        with pytest.raises(ValueError):
            run_synthetic(scenario(), "gather", 1024)

    def test_telemetry_recorder_attached(self):
        s = scenario(telemetry_bucket_us=5.0)
        res = run_synthetic(s, "tornado", 256 * 1024)
        assert res.recorder is not None
        assert len(res.recorder.times_us) > 0


class TestTrace:
    def test_trace_run(self):
        res = run_trace(scenario(max_us=5_000.0), load=0.5,
                        duration_us=50.0)
        assert res.metrics.flows_total > 0
        assert res.metrics.flows_completed > 0


class TestCollective:
    @pytest.mark.parametrize("kind", ["ring_allreduce",
                                      "butterfly_allreduce", "alltoall"])
    def test_collectives_finish(self, kind):
        res = run_collective(scenario(max_us=100_000.0), kind, 512 * 1024,
                             n_parallel=4)
        assert res.collective.done

    def test_unknown_collective(self):
        with pytest.raises(ValueError):
            run_collective(scenario(), "gossip", 1024)


class TestMixedTraffic:
    def test_main_and_background_metrics_split(self):
        main, bg = run_mixed_traffic(
            scenario(), "permutation", 128 * 1024,
            background_fraction=0.25)
        assert main.flows_total == 6
        assert bg.flows_total == 2
        assert main.flows_completed == 6


class TestFailureHooks:
    def test_fail_cables_hook(self):
        s = scenario(failures=fail_cables_hook([0], at_us=1.0))
        net = s.network()
        net.engine.run(until_ps=2_000_000)
        assert net.tree.t0_uplink_cables()[0].down

    def test_fail_fraction_cables(self):
        s = scenario(failures=fail_fraction_hook(0.5, at_us=0.0))
        net = s.network()
        net.engine.run(until_ps=1_000_000)
        down = sum(c.down for c in net.tree.t0_uplink_cables())
        assert down == len(net.tree.t0_uplink_cables()) // 2

    def test_fail_fraction_switches_keeps_one(self):
        s = scenario(failures=fail_fraction_hook(1.0, at_us=0.0,
                                                 what="switches"))
        net = s.network()
        net.engine.run(until_ps=1_000_000)
        # never fails every T1: the workload must stay completable
        alive = [t1 for t1 in net.tree.t1s
                 if not all(c.down for c in net.tree.cables_of_switch(t1))]
        assert alive

    def test_degrade_hooks(self):
        s = scenario(failures=degrade_cables_hook([0], 200.0))
        net = s.network()
        assert net.tree.t0_uplink_cables()[0].a_port.rate_gbps == 200.0
        s2 = scenario(failures=degrade_fraction_hook(0.25, 200.0))
        net2 = s2.network()
        slow = [c for c in net2.tree.t0_uplink_cables()
                if c.a_port.rate_gbps == 200.0]
        assert len(slow) == 2  # 25% of 8 uplink cables

    def test_ber_hook(self):
        s = scenario(failures=ber_hook(0.01))
        net = s.network()
        assert any(c.ber == 0.01 for c in net.tree.t0_uplink_cables())

    def test_failed_run_still_completes(self):
        s = scenario(lb="reps",
                     failures=fail_cables_hook([0], at_us=5.0,
                                               duration_us=50.0))
        res = run_synthetic(s, "permutation", 256 * 1024)
        assert res.metrics.flows_completed == res.metrics.flows_total


class TestMatrix:
    def test_matrix_runs_each_lb(self):
        results = run_lb_matrix(
            ["ops", "reps"],
            lambda lb: scenario(lb=lb),
            lambda s: run_synthetic(s, "tornado", 128 * 1024),
        )
        assert set(results) == {"ops", "reps"}
        for res in results.values():
            assert res.metrics.flows_completed > 0
