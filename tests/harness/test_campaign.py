"""Campaign runner: selection, fail-soft isolation, dedup, pruning."""

from __future__ import annotations

import os

import pytest

from repro.harness.campaign import (
    CampaignResult,
    FigureOutcome,
    run_campaign,
    select_figures,
    shared_store,
)
from repro.harness.sweep import ResultStore, SCHEMA_VERSION
from repro.scenarios import figure_ids

from helpers import stub_registry, stub_spec


class TestSelectFigures:
    def test_default_is_whole_catalogue_in_order(self):
        specs = select_figures()
        assert [s.fig_id for s in specs] == figure_ids()

    def test_only_and_skip(self):
        specs = select_figures(only=("fig07", "table1", "fig24"),
                               skip=("fig24",))
        assert [s.fig_id for s in specs] == ["fig07", "table1"]

    def test_tag_filter_matches_any(self):
        specs = select_figures(tags=("model",))
        assert specs
        assert all("model" in s.tags for s in specs)
        ids = {s.fig_id for s in specs}
        assert {"fig14", "fig17", "fig18", "fig20", "fig24",
                "table1"} <= ids

    def test_filters_compose(self):
        specs = select_figures(tags=("failures",), skip=("fig09",))
        ids = [s.fig_id for s in specs]
        assert "fig07" in ids and "fig09" not in ids

    def test_unknown_id_raises_helpful_error(self):
        with pytest.raises(KeyError, match="figures list"):
            select_figures(only=("fig99",))
        with pytest.raises(KeyError, match="figures list"):
            select_figures(skip=("not_a_fig",))


class TestRunCampaign:
    def test_all_outcomes_in_plan_order(self, tmp_path):
        store = ResultStore(str(tmp_path))
        campaign = run_campaign(stub_registry(), store=store)
        assert [o.fig_id for o in campaign] == \
            ["stub_a", "stub_b", "stub_c"]
        assert campaign.counts() == \
            {"pass": 2, "warn": 1, "fail": 0, "error": 0}
        assert campaign.ok() and campaign.ok(strict=True)
        assert campaign["stub_c"].status == "warn"

    def test_backend_recorded_for_provenance(self, tmp_path,
                                             monkeypatch):
        store = ResultStore(str(tmp_path))
        campaign = run_campaign(stub_registry(), store=store)
        assert campaign.backend == "serial"
        campaign = run_campaign(stub_registry(), store=store,
                                backend="batched")
        assert campaign.backend == "batched"
        monkeypatch.setenv("REPRO_BACKEND", "shard")
        campaign = run_campaign(stub_registry(), store=store)
        assert campaign.backend == "shard"

    def test_backend_instance_runs_figures(self, tmp_path):
        from repro.harness.backends import BatchedBackend
        store = ResultStore(str(tmp_path))
        campaign = run_campaign(stub_registry(), store=store,
                                backend=BatchedBackend(batch_size=2))
        assert campaign.ok()
        assert campaign.backend == "batched"
        assert campaign.executed > 0

    def test_empty_campaign_rejected(self):
        with pytest.raises(ValueError, match="empty campaign"):
            run_campaign([])

    def test_cross_figure_dedup_through_shared_store(self, tmp_path):
        store = ResultStore(str(tmp_path))
        campaign = run_campaign(stub_registry(), store=store)
        # stub_b shares the buffer=8 task with stub_a: one cache hit
        assert campaign["stub_a"].executed == 2
        assert campaign["stub_b"].cached == 1
        assert campaign["stub_b"].executed == 1
        # 4 distinct tasks on disk for 5 requested cells
        assert campaign.tasks == 5
        assert len(store) == 4

    def test_rerun_is_fully_cached(self, tmp_path):
        store = ResultStore(str(tmp_path))
        run_campaign(stub_registry(), store=store)
        again = run_campaign(stub_registry(), store=store)
        assert again.executed == 0
        assert again.cached == again.tasks == 5

    def test_failure_isolation_build_crash(self, tmp_path):
        def boom():
            raise RuntimeError("matrix exploded")
        specs = stub_registry() + [stub_spec("stub_bad", build=boom)]
        campaign = run_campaign(specs, store=ResultStore(str(tmp_path)))
        assert campaign["stub_bad"].status == "error"
        assert "matrix exploded" in campaign["stub_bad"].error
        # the broken spec did not abort the campaign
        assert campaign["stub_a"].status == "pass"
        assert campaign["stub_c"].status == "warn"
        assert not campaign.ok()

    def test_shape_divergence_is_fail_not_error(self, tmp_path):
        def check_bad(result):
            assert result.value(1) > result.value(8), "shape off"
        specs = [stub_spec("stub_div", check=check_bad)] \
            + stub_registry()
        campaign = run_campaign(specs, store=ResultStore(str(tmp_path)))
        outcome = campaign["stub_div"]
        assert outcome.status == "fail"
        assert "shape off" in outcome.error
        assert outcome.result is not None  # numbers still reported
        assert campaign.ok() and not campaign.ok(strict=True)

    def test_checks_disabled_means_warn(self, tmp_path):
        campaign = run_campaign(stub_registry(),
                                store=ResultStore(str(tmp_path)),
                                check=False)
        assert {o.status for o in campaign} == {"warn"}

    def test_figure_jobs_parallel_matches_serial(self, tmp_path):
        serial = run_campaign(
            stub_registry(), store=ResultStore(str(tmp_path / "a")))
        threaded = run_campaign(
            stub_registry(), store=ResultStore(str(tmp_path / "b")),
            figure_jobs=3)
        assert [o.fig_id for o in threaded] == \
            [o.fig_id for o in serial]
        assert [o.status for o in threaded] == \
            [o.status for o in serial]
        for a, b in zip(serial, threaded):
            if a.result is not None:
                assert a.result.values() == b.result.values()

    def test_threaded_campaign_with_process_pools_uses_spawn(
            self, tmp_path):
        """figure_jobs>1 + workers>1 must not fork from threads; the
        spawn-context pools still produce identical results."""
        campaign = run_campaign(
            stub_registry(), store=ResultStore(str(tmp_path)),
            figure_jobs=2, workers=2)
        assert campaign.counts() == \
            {"pass": 2, "warn": 1, "fail": 0, "error": 0}
        baseline = run_campaign(stub_registry())
        for a, b in zip(campaign, baseline):
            if b.result is not None:
                assert a.result.values() == b.result.values()

    def test_no_store_still_runs(self):
        campaign = run_campaign(stub_registry())
        assert campaign.ok()
        assert campaign.cached == 0


class TestPruneStale:
    def stale_payload(self):
        return {"schema": SCHEMA_VERSION, "sim": "0" * 16,
                "task": {"label": "ghost", "seed": 1},
                "metrics": {}, "extra": {}}

    def test_prune_stale_drops_old_simulator_artifacts(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put("feedfacefeedfacefeedface", self.stale_payload())
        campaign = run_campaign(stub_registry(), store=store,
                                prune_stale=True)
        assert "feedfacefeedfacefeedface" in campaign.pruned
        assert not os.path.exists(
            os.path.join(str(tmp_path), "feedfacefeedfacefeedface.json"))
        # fresh artifacts survive and the manifest was read-repaired
        manifest = store.manifest()
        assert "feedfacefeedfacefeedface" not in manifest
        assert len(manifest) == len(store.keys()) == 4

    def test_without_flag_stale_artifacts_survive(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put("feedfacefeedfacefeedface", self.stale_payload())
        campaign = run_campaign(stub_registry(), store=store)
        assert campaign.pruned == []
        assert "feedfacefeedfacefeedface" in store.keys()

    def test_manifest_read_repair_after_index_loss(self, tmp_path):
        """A campaign over a store whose manifest vanished re-indexes
        every artifact and persists the repaired index to disk."""
        import json
        store = ResultStore(str(tmp_path))
        run_campaign(stub_registry(), store=store)
        manifest_path = os.path.join(str(tmp_path), ResultStore.MANIFEST)
        os.remove(manifest_path)
        campaign = run_campaign(stub_registry(), store=store,
                                prune_stale=True)
        assert campaign.cached == 5  # artifacts still hit
        # the repaired index was written back, not just built in memory
        with open(manifest_path) as fh:
            on_disk = json.load(fh)
        assert set(on_disk) == set(store.keys())


class TestStoreConcurrency:
    def test_same_process_threads_share_a_store_safely(self, tmp_path):
        """Figure threads in one process write the same manifest; the
        per-thread temp names must never collide on os.replace."""
        from concurrent.futures import ThreadPoolExecutor
        store = ResultStore(str(tmp_path))
        payload = {"schema": SCHEMA_VERSION, "sim": "x" * 16,
                   "task": {"label": "t", "seed": 1},
                   "metrics": {}, "extra": {}}

        def put(i):
            store.put(f"key{i:04d}", dict(payload))
        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(put, range(64)))
        assert len(store.keys()) == 64
        # read-repair reconciles any manifest entries lost to the
        # read-merge-write race between threads
        assert set(store.repair_manifest()) == set(store.keys())

    def test_fresh_store_prune_keeps_disk_artifacts(self, tmp_path):
        """A cache-policy override (`--fresh`) must not make prune()
        believe every artifact is stale and wipe the store."""
        class FreshStore(ResultStore):
            def get(self, key):
                return None
        store = ResultStore(str(tmp_path))
        run_campaign(stub_registry(), store=store)
        fresh = FreshStore(str(tmp_path))
        campaign = run_campaign(stub_registry(), store=fresh,
                                prune_stale=True)
        assert campaign.executed == 5  # --fresh: everything re-ran
        assert campaign.pruned == []   # ...but nothing was deleted
        assert len(store.keys()) == 4


class TestSharedStore:
    def test_shared_store_location(self, tmp_path):
        store = shared_store(str(tmp_path))
        assert store.root == os.path.join(str(tmp_path), "campaign")

    def test_outcome_accessors_on_error(self):
        spec = stub_spec("stub_x")
        outcome = FigureOutcome(spec, "error", error="tb")
        assert outcome.n_tasks == outcome.executed == outcome.cached == 0
        assert outcome.badge() == "[ERROR]"

    def test_campaign_result_getitem_unknown(self):
        campaign = CampaignResult([], wall_s=0.0)
        with pytest.raises(KeyError):
            campaign["nope"]
