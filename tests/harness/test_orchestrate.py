"""The elastic campaign orchestrator (ISSUE 10 tentpole).

Unit level: balanced LPT planning, the worker's scoped environment
and heartbeat protocol, and the SSH runner's command construction.
Orchestrator level: fake runners drive the retry / fatal-abort /
retry-exhaustion / heartbeat-timeout paths without spawning a single
subprocess.  The real-subprocess chaos drill (SIGKILL a live worker
mid-shard, campaign still matches single-host output) lives in
``tests/test_cli.py::TestOrchestrate``.
"""

import io
import json
import os

import pytest

from repro.harness.backends.shard import shard_partition
from repro.harness.backends.worker import (
    EXIT_FATAL,
    Heartbeat,
    read_heartbeat,
    run_shard_worker,
    scoped_env,
)
from repro.harness.campaign import select_figures
from repro.harness.orchestrate import (
    LocalGroupRunner,
    Orchestrator,
    SSHRunner,
    WorkerHandle,
    WorkerRunner,
    balanced_partition,
)

SELECTION = ("table1", "fig24")  # 7 cheap model tasks at smoke scale


class TestBalancedPartition:
    def test_equal_weights_reduce_to_round_robin(self):
        """No wall-time history must plan exactly like `shard plan`:
        round-robin over the sorted keys."""
        keys = [f"k{i:02d}" for i in range(11)]
        weighted = [(k, 0.0) for k in reversed(keys)]
        assert balanced_partition(weighted, 3) == \
            shard_partition(keys, 3)

    def test_lpt_balances_skewed_weights(self):
        weighted = [("a", 10.0), ("b", 9.0), ("c", 1.0), ("d", 1.0),
                    ("e", 1.0)]
        bins = balanced_partition(weighted, 2)
        assert bins == [["a", "d"], ["b", "c", "e"]]
        loads = [sum(dict(weighted)[k] for k in b) for b in bins]
        assert max(loads) - min(loads) <= 1.0

    def test_deterministic_and_input_order_free(self):
        weighted = [("x", 3.0), ("a", 3.0), ("m", 1.0), ("b", 2.0)]
        first = balanced_partition(weighted, 2)
        assert balanced_partition(list(reversed(weighted)), 2) == first

    def test_partition_is_a_partition(self):
        weighted = [(f"k{i}", float(i % 4)) for i in range(23)]
        bins = balanced_partition(weighted, 5)
        flat = sorted(k for b in bins for k in b)
        assert flat == sorted(k for k, _w in weighted)

    def test_rejects_nonpositive_shards(self):
        with pytest.raises(ValueError, match=">= 1"):
            balanced_partition([("a", 1.0)], 0)


class TestScopedEnv:
    def test_sets_and_restores(self):
        os.environ.pop("REPRO_TEST_SCOPED", None)
        with scoped_env(REPRO_TEST_SCOPED="x"):
            assert os.environ["REPRO_TEST_SCOPED"] == "x"
        assert "REPRO_TEST_SCOPED" not in os.environ

    def test_restores_previous_value_even_on_error(self):
        os.environ["REPRO_TEST_SCOPED"] = "before"
        try:
            with pytest.raises(RuntimeError):
                with scoped_env(REPRO_TEST_SCOPED="during"):
                    assert os.environ["REPRO_TEST_SCOPED"] == "during"
                    raise RuntimeError("boom")
            assert os.environ["REPRO_TEST_SCOPED"] == "before"
        finally:
            os.environ.pop("REPRO_TEST_SCOPED", None)

    def test_none_removes_for_the_scope(self):
        os.environ["REPRO_TEST_SCOPED"] = "here"
        try:
            with scoped_env(REPRO_TEST_SCOPED=None):
                assert "REPRO_TEST_SCOPED" not in os.environ
            assert os.environ["REPRO_TEST_SCOPED"] == "here"
        finally:
            os.environ.pop("REPRO_TEST_SCOPED", None)


class TestHeartbeat:
    def test_write_bump_read(self, tmp_path):
        path = str(tmp_path / "hb.json")
        beat = Heartbeat(path, shard=1, n_shards=4, total=5,
                         interval_s=60.0).start()
        try:
            doc = read_heartbeat(path)
            assert doc["shard"] == 1 and doc["n_shards"] == 4
            assert doc["done"] == 0 and doc["total"] == 5
            assert doc["pid"] == os.getpid()
            beat.bump(3)
            assert read_heartbeat(path)["done"] == 3
        finally:
            beat.close()
        assert read_heartbeat(path)["done"] == 3

    def test_missing_and_torn_reads_are_none(self, tmp_path):
        assert read_heartbeat(str(tmp_path / "ghost.json")) is None
        torn = tmp_path / "torn.json"
        torn.write_text('{"pid": 1, "done"')
        assert read_heartbeat(str(torn)) is None

    def test_none_path_is_a_noop(self):
        beat = Heartbeat(None, 0, 1, 1).start()
        beat.bump()
        beat.close()


class TestWorkerValidation:
    def test_unreadable_manifest_is_fatal(self, tmp_path):
        out = io.StringIO()
        rc = run_shard_worker(str(tmp_path / "nope.json"),
                              str(tmp_path / "s"), out=out)
        assert rc == EXIT_FATAL
        assert "cannot read" in out.getvalue()

    def test_simulator_drift_is_fatal(self, tmp_path):
        manifest = {"schema": 1, "kind": "repro-shard", "shard": 0,
                    "n_shards": 1, "sim": "0" * 16,
                    "artifact_schema": 1, "scale": "smoke",
                    "figures": ["table1"], "keys": []}
        path = tmp_path / "shard-0.json"
        path.write_text(json.dumps(manifest))
        out = io.StringIO()
        rc = run_shard_worker(str(path), str(tmp_path / "s"), out=out)
        assert rc == EXIT_FATAL
        assert "re-plan" in out.getvalue()
        assert "REPRO_SHARD" not in os.environ


class TestSSHRunner:
    def shard(self, tmp_path):
        from repro.harness.orchestrate import ShardRun
        return ShardRun(index=3, manifest_path="/shared/plan/s3.json",
                        store_dir="/shared/stores/s3",
                        heartbeat_path="/shared/hb/s3.json",
                        total=2, expected_s=1.0, origin="shard-3/4")

    def test_command_wraps_the_worker_invocation(self, tmp_path,
                                                 monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")
        runner = SSHRunner(["hostA", "hostB"], python="python3",
                           pythonpath="/shared/src")
        argv = runner.command_for(self.shard(tmp_path), slot=1)
        assert argv[0] == "ssh"
        assert "BatchMode=yes" in argv
        assert "hostB" in argv  # slot 1 -> second host
        remote = argv[-1]
        assert "PYTHONPATH=/shared/src" in remote
        assert "REPRO_BENCH_SCALE=smoke" in remote
        assert "-m repro.harness.backends.worker" in remote
        assert "/shared/plan/s3.json" in remote
        assert "--heartbeat /shared/hb/s3.json" in remote

    def test_slots_follow_hosts_and_repeats_count(self):
        assert SSHRunner(["h1", "h1", "h2"]).slots() == 3
        with pytest.raises(ValueError, match="at least one host"):
            SSHRunner([])

    def test_local_runner_builds_worker_module_command(self, tmp_path):
        argv = LocalGroupRunner(python="pyX").command_for(
            self.shard(tmp_path), workers=2, backend="serial")
        assert argv[:3] == ["pyX", "-m",
                            "repro.harness.backends.worker"]
        assert "--workers" in argv and "2" in argv
        assert "--backend" in argv and "serial" in argv


# ----------------------------------------------------------------------
# orchestrator event loop, driven by fake runners
# ----------------------------------------------------------------------
class _Handle(WorkerHandle):
    def __init__(self, rc, name="fake:0"):
        self.rc = rc
        self.name = name
        self.killed = False

    def poll(self):
        return self.rc

    def kill(self):
        self.killed = True


class _FakeRunner(WorkerRunner):
    """Consumes a scripted behavior per launch: ``ok`` runs the shard
    in-process (real worker, real store), ``crash``/``fatal`` return
    the exit code without running, ``hang`` never exits."""

    name = "fake"

    def __init__(self, behaviors):
        self.behaviors = list(behaviors)
        self.launches = []
        self.handles = []

    def launch(self, shard, slot, *, workers, backend, log_path):
        behavior = self.behaviors.pop(0) if self.behaviors else "ok"
        self.launches.append((shard.index, behavior))
        with open(log_path, "w") as fh:
            fh.write(f"{behavior} shard {shard.index}\n")
        if behavior == "ok":
            rc = run_shard_worker(
                shard.manifest_path, shard.store_dir,
                heartbeat_path=shard.heartbeat_path,
                out=io.StringIO())
            handle = _Handle(rc, f"fake:{slot}")
        elif behavior == "crash":
            handle = _Handle(1, f"fake:{slot}")
        elif behavior == "fatal":
            handle = _Handle(EXIT_FATAL, f"fake:{slot}")
        else:
            handle = _Handle(None, f"fake:{slot}")
        self.handles.append(handle)
        return handle


@pytest.fixture()
def smoke_env(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")


def _orchestrator(tmp_path, runner, **kwargs):
    kwargs.setdefault("fan_out", 1)
    kwargs.setdefault("n_shards", 2)
    kwargs.setdefault("max_retries", 1)
    kwargs.setdefault("poll_interval_s", 0.01)
    kwargs.setdefault("heartbeat_timeout_s", 5.0)
    kwargs.setdefault("report_path", str(tmp_path / "R.md"))
    kwargs.setdefault("json_path", str(tmp_path / "c.json"))
    kwargs.setdefault("html_path", str(tmp_path / "status.html"))
    return Orchestrator(select_figures(only=list(SELECTION)),
                        results_dir=str(tmp_path / "results"),
                        runner=runner, **kwargs)


class TestOrchestratorLoop:
    def test_clean_run_merges_and_reports(self, tmp_path, smoke_env):
        runner = _FakeRunner(["ok", "ok"])
        result = _orchestrator(tmp_path, runner).run()
        assert result.ok()
        assert result.retries == 0
        assert [s.status for s in result.shards] == ["merged", "merged"]
        assert sum(s.merged_keys for s in result.shards) == 7
        doc = json.loads((tmp_path / "c.json").read_text())
        assert {f["status"] for f in doc["figures"]} == {"pass"}
        page = (tmp_path / "status.html").read_text()
        assert "complete" in page and "http-equiv" not in page

    def test_crash_retries_and_recovers(self, tmp_path, smoke_env):
        runner = _FakeRunner(["crash", "ok", "ok"])
        result = _orchestrator(tmp_path, runner).run()
        assert result.ok()
        assert result.retries == 1
        # the crashed shard relaunched after the queue drained
        crashed = runner.launches[0][0]
        assert runner.launches[-1] == (crashed, "ok")
        assert result.shards[crashed].attempts == 2

    def test_fatal_aborts_everything(self, tmp_path, smoke_env):
        runner = _FakeRunner(["fatal"])
        result = _orchestrator(tmp_path, runner).run()
        assert not result.ok()
        assert result.aborted
        assert result.campaign is None
        statuses = sorted(s.status for s in result.shards)
        assert statuses == ["aborted", "failed"]
        # the fatal shard was never retried
        assert len(runner.launches) == 1
        page = (tmp_path / "status.html").read_text()
        assert "failed" in page

    def test_retry_exhaustion_fails_the_shard(self, tmp_path,
                                              smoke_env):
        runner = _FakeRunner(["crash", "crash", "crash", "crash"])
        result = _orchestrator(tmp_path, runner).run()
        assert not result.ok()
        failed = [s for s in result.shards if s.status == "failed"]
        assert failed and failed[0].attempts == 2  # 1 + max_retries
        assert "exit 1" in failed[0].error

    def test_heartbeat_silence_kills_and_retries(self, tmp_path,
                                                 smoke_env):
        runner = _FakeRunner(["hang", "ok", "ok"])
        result = _orchestrator(tmp_path, runner,
                               heartbeat_timeout_s=0.05).run()
        assert result.ok()
        assert result.retries == 1
        assert runner.handles[0].killed
        assert any("no heartbeat" in e for e in result.events)

    def test_chaos_without_live_worker_never_fires_on_fakes(
            self, tmp_path, smoke_env):
        """Fake 'ok' workers exit before the poll loop ever sees them
        alive, so a requested chaos kill cannot fire — the result
        records the shortfall instead of pretending."""
        runner = _FakeRunner(["ok", "ok"])
        result = _orchestrator(tmp_path, runner, chaos_kills=1).run()
        assert result.chaos_requested == 1
        assert result.chaos_killed == 0

    def test_retry_reuses_the_shard_store(self, tmp_path, smoke_env):
        """The elastic-cost contract: a second attempt serves finished
        tasks from the first attempt's store."""
        class _HalfThenOk(_FakeRunner):
            def launch(self, shard, slot, **kwargs):
                if not self.launches:
                    # attempt 1: really run the shard, then report a
                    # crash anyway (worker died after finishing)
                    run_shard_worker(shard.manifest_path,
                                     shard.store_dir,
                                     out=io.StringIO())
                    self.launches.append((shard.index, "crash"))
                    handle = _Handle(1, "fake:0")
                    self.handles.append(handle)
                    return handle
                return super().launch(shard, slot, **kwargs)

        runner = _HalfThenOk([])
        result = _orchestrator(tmp_path, runner, n_shards=1).run()
        assert result.ok()
        assert result.retries == 1
        # attempt 2 wrote nothing new: every artifact was cached
        shard = result.shards[0]
        assert shard.attempts == 2
        assert shard.merged_keys == 7

    def test_empty_selection_is_an_error(self, tmp_path, smoke_env):
        with pytest.raises(ValueError, match="empty campaign"):
            Orchestrator([], results_dir=str(tmp_path / "r"))
