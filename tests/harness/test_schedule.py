"""The observation-weighted default expectation (ISSUE 10 bugfix).

``longest_first`` gives tasks whose label has no recorded history a
*default* expected wall time.  It used to be the unweighted mean of
the per-label means, so one once-seen outlier label moved every
unseen task's dispatch position; now it is weighted by observation
count (total recorded wall over total observations), so rare labels
influence the default in proportion to how often they were actually
seen.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.backends.schedule import (
    default_expectation,
    longest_first,
    wall_time_history,
)


class _FakeStore:
    def __init__(self, entries):
        self._entries = entries

    def manifest(self):
        return self._entries


class _FakeTask:
    def __init__(self, label):
        self._label = label

    def label(self):
        return self._label


def _store(**label_walls):
    """A fake store whose manifest records the given wall times,
    e.g. ``_store(heavy=[1.0, 1.1], tiny=[0.01])``."""
    entries = {}
    for label, walls in label_walls.items():
        for i, wall in enumerate(walls):
            entries[f"{label}-{i}"] = {"label": label, "wall_s": wall}
    return _FakeStore(entries)


def _order(store, *labels):
    pending = [(f"k{i}", _FakeTask(label))
               for i, label in enumerate(labels)]
    return [task.label() for _key, task in longest_first(pending, store)]


class TestDefaultExpectation:
    def test_weighted_by_observation_count(self):
        history = {"heavy": (10.0, 2), "light": (1.0, 1)}
        # (10*2 + 1*1) / 3, NOT mean(10, 1) = 5.5
        assert default_expectation(history) == pytest.approx(7.0)

    def test_empty_history(self):
        assert default_expectation({}) == 0.0

    def test_history_carries_counts(self):
        store = _store(heavy=[9.0, 11.0], light=[1.0])
        assert wall_time_history(store) == {
            "heavy": (10.0, 2), "light": (1.0, 1)}

    def test_outlier_label_no_longer_dominates(self):
        """The motivating defect: 40 observations near 1.0s plus ONE
        0.01s observation.  Unweighted, the default collapsed to
        ~0.5s and unseen tasks dispatched after a 0.8s label;
        weighted, unseen tasks stay near the workload's typical
        cost."""
        walls = {"typical": [1.0] * 40, "tiny": [0.01],
                 "mid": [0.8] * 3}
        store = _store(**walls)
        # weighted default ~ (40*1.0 + 0.01 + 3*0.8) / 44 ~ 0.96
        assert _order(store, "mid", "unseen") == ["unseen", "mid"]
        # sanity: the old unweighted default mean(1.0, 0.01, 0.8) ~ 0.6
        # would have reordered these
        unweighted = (1.0 + 0.01 + 0.8) / 3
        assert unweighted < 0.8 < default_expectation(
            wall_time_history(store))


@st.composite
def _history_case(draw):
    """A dominant label, a mid-cost seen label, and a rare tiny label
    observation that must not move unseen tasks across mid."""
    dominant = draw(st.lists(
        st.floats(0.9, 1.1, allow_nan=False), min_size=20,
        max_size=60))
    mid = draw(st.lists(
        st.floats(0.3, 0.6, allow_nan=False), min_size=1, max_size=4))
    tiny = draw(st.floats(0.0, 0.02, allow_nan=False))
    return dominant, mid, tiny


class TestRareLabelProperty:
    @settings(max_examples=60, deadline=None)
    @given(_history_case())
    def test_rare_tiny_label_does_not_reorder_unseen(self, case):
        """Property (ISSUE 10): adding one observation of a rare tiny
        label must not reorder unseen tasks relative to seen ones."""
        dominant, mid, tiny = case
        before = _store(dominant=dominant, mid=mid)
        after = _store(dominant=dominant, mid=mid, tiny=[tiny])
        labels = ("mid", "unseen", "dominant")
        assert _order(before, *labels) == _order(after, *labels)

    @settings(max_examples=60, deadline=None)
    @given(_history_case())
    def test_default_moves_at_most_one_observation_worth(self, case):
        """Quantified: one new observation shifts the default by at
        most (old_default - new_value) / (n + 1)."""
        dominant, mid, tiny = case
        hist_before = wall_time_history(_store(dominant=dominant,
                                               mid=mid))
        hist_after = wall_time_history(_store(dominant=dominant,
                                              mid=mid, tiny=[tiny]))
        n = len(dominant) + len(mid)
        d_before = default_expectation(hist_before)
        d_after = default_expectation(hist_after)
        bound = abs(d_before - tiny) / (n + 1)
        assert abs(d_before - d_after) <= bound + 1e-9
