"""Reporting helpers and scale control."""

from __future__ import annotations

import pytest

from repro.harness.report import (
    cdf_points,
    format_table,
    shape_note,
    speedups,
)
from repro.harness.scale import FULL, QUICK, SMOKE, current_scale


class TestReport:
    def test_table_alignment(self):
        out = format_table("T", ["a", "bb"], [[1, 2.5], ["xx", 0.001]])
        lines = out.splitlines()
        assert lines[0] == "== T =="
        assert len({len(line) for line in lines[1:]}) <= 2

    def test_speedups(self):
        s = speedups(100.0, {"a": 50.0, "b": 200.0})
        assert s["a"] == 2.0
        assert s["b"] == 0.5

    def test_speedup_zero_value(self):
        assert speedups(10.0, {"x": 0.0})["x"] == float("inf")

    def test_shape_note(self):
        assert shape_note("claim", True).startswith("[OK ]")
        assert "DIVERGES" in shape_note("claim", False)

    def test_cdf_points(self):
        pts = cdf_points(list(range(100)), n_points=5)
        assert pts[-1][1] == 1.0
        vals = [v for v, _ in pts]
        assert vals == sorted(vals)

    def test_cdf_empty(self):
        assert cdf_points([]) == []

    def test_inf_formatting(self):
        out = format_table("T", ["x"], [[float("inf")]])
        assert "inf" in out


class TestScale:
    def test_default_is_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert current_scale() is QUICK

    def test_full_selectable(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "full")
        assert current_scale() is FULL

    def test_smoke_selectable(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")
        assert current_scale() is SMOKE
        assert SMOKE.msg_bytes(8) == 128 * 1024  # floor applies

    def test_invalid_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "huge")
        with pytest.raises(ValueError):
            current_scale()

    def test_msg_scaling_floors(self):
        assert QUICK.msg_bytes(0.001) == 128 * 1024
        assert FULL.msg_bytes(8) == 8 << 20

    def test_topo_overrides(self):
        t = QUICK.topo(tiers=2, oversubscription=2)
        assert t.n_hosts == QUICK.n_hosts
        assert t.oversubscription == 2
