"""Sweep harness: grid expansion, caching, parallel determinism."""

from __future__ import annotations

import json
import os

import pytest

from repro.harness.sweep import (
    FailureSpec,
    ResultStore,
    SweepGrid,
    WorkloadSpec,
    execute_task,
    make_task,
    run_sweep,
    spawn_seeds,
    task_key,
)
from repro.sim.topology import TopologyParams

TINY_TOPO = {"n_hosts": 8, "hosts_per_t0": 4}
TINY_WORKLOAD = WorkloadSpec(kind="synthetic", pattern="permutation",
                             msg_bytes=128 * 1024)


def tiny_grid(**overrides) -> SweepGrid:
    kw = dict(lbs=["ops", "reps"], workloads=[TINY_WORKLOAD],
              topos=[TINY_TOPO], seeds=(1, 2),
              scenario_kw={"max_us": 2_000_000.0})
    kw.update(overrides)
    return SweepGrid(**kw)


class TestGridExpansion:
    def test_cross_product_size(self):
        grid = tiny_grid(lbs=["ecmp", "ops", "reps"], seeds=(1, 2, 3, 4),
                         axes={"evs_size": [16, 64]})
        assert len(grid.tasks()) == 3 * 4 * 2

    def test_axis_values_reach_scenario(self):
        grid = tiny_grid(axes={"evs_size": [16, 64]})
        evs = {dict(t.scenario)["evs_size"] for t in grid.tasks()}
        assert evs == {16, 64}

    def test_explicit_seeds_win_over_root_seed(self):
        grid = tiny_grid(seeds=(5, 6), root_seed=1, n_seeds=4)
        assert {t.seed for t in grid.tasks()} == {5, 6}

    def test_seeds_spawned_from_root(self):
        grid = tiny_grid(seeds=(), root_seed=42, n_seeds=3)
        assert sorted({t.seed for t in grid.tasks()}) == \
            sorted(spawn_seeds(42, 3))

    def test_topology_params_accepted(self):
        task = make_task("reps", TopologyParams(n_hosts=8, hosts_per_t0=4),
                         TINY_WORKLOAD, seed=1)
        assert dict(task.topo)["n_hosts"] == 8

    def test_unknown_scenario_key_rejected(self):
        with pytest.raises(ValueError, match="unsupported scenario"):
            make_task("reps", TINY_TOPO, TINY_WORKLOAD, seed=1,
                      telemetry_bucket_us=5.0)


class TestSeeding:
    def test_spawn_is_deterministic(self):
        assert spawn_seeds(7, 4) == spawn_seeds(7, 4)

    def test_spawn_is_prefix_stable(self):
        assert spawn_seeds(7, 8)[:4] == spawn_seeds(7, 4)

    def test_distinct_roots_distinct_seeds(self):
        assert set(spawn_seeds(1, 4)).isdisjoint(spawn_seeds(2, 4))


class TestTaskKey:
    def test_stable_across_processes_and_orders(self):
        a = make_task("reps", TINY_TOPO, TINY_WORKLOAD, seed=1,
                      evs_size=64, max_us=1000.0)
        b = make_task("reps", dict(reversed(list(TINY_TOPO.items()))),
                      TINY_WORKLOAD, seed=1, max_us=1000.0, evs_size=64)
        assert task_key(a) == task_key(b)

    def test_sensitive_to_every_axis(self):
        base = make_task("reps", TINY_TOPO, TINY_WORKLOAD, seed=1)
        keys = {task_key(base)}
        variants = [
            make_task("ops", TINY_TOPO, TINY_WORKLOAD, seed=1),
            make_task("reps", TINY_TOPO, TINY_WORKLOAD, seed=2),
            make_task("reps", {"n_hosts": 16, "hosts_per_t0": 4},
                      TINY_WORKLOAD, seed=1),
            make_task("reps", TINY_TOPO,
                      WorkloadSpec(kind="synthetic", pattern="tornado",
                                   msg_bytes=128 * 1024), seed=1),
            make_task("reps", TINY_TOPO, TINY_WORKLOAD, seed=1,
                      evs_size=64),
            make_task("reps", TINY_TOPO, TINY_WORKLOAD, seed=1,
                      failure=FailureSpec.make("ber", ber=0.01)),
        ]
        for v in variants:
            keys.add(task_key(v))
        assert len(keys) == 7

    def test_inapplicable_workload_fields_share_key(self):
        """workload_seed never reaches a collective run, so it must not
        mint distinct cache entries for identical simulations."""
        def coll(seed):
            return make_task(
                "reps", TINY_TOPO,
                WorkloadSpec(kind="collective", pattern="ring_allreduce",
                             msg_bytes=128 * 1024, workload_seed=seed),
                seed=1)
        assert task_key(coll(1)) == task_key(coll(2))
        # but for synthetic workloads it is real entropy
        syn1 = make_task("reps", TINY_TOPO,
                         WorkloadSpec(workload_seed=1), seed=1)
        syn2 = make_task("reps", TINY_TOPO,
                         WorkloadSpec(workload_seed=2), seed=1)
        assert task_key(syn1) != task_key(syn2)

    def test_failure_spec_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown failure kind"):
            FailureSpec.make("meteor_strike", fraction=1.0)


class TestStoreCaching:
    def test_cache_miss_then_hit(self, tmp_path):
        store = ResultStore(str(tmp_path / "campaign"))
        grid = tiny_grid()
        first = run_sweep(grid, store=store)
        assert (first.executed, first.cached) == (4, 0)
        assert len(store) == 4
        again = run_sweep(grid, store=store)
        assert (again.executed, again.cached) == (0, 4)

    def test_partial_cache_runs_only_missing(self, tmp_path):
        store = ResultStore(str(tmp_path))
        small = tiny_grid(lbs=["reps"])
        run_sweep(small, store=store)
        grown = tiny_grid(lbs=["ops", "reps"])
        results = run_sweep(grown, store=store)
        assert results.cached == 2
        assert results.executed == 2

    def test_corrupt_artifact_recomputed(self, tmp_path):
        store = ResultStore(str(tmp_path))
        grid = tiny_grid(lbs=["reps"], seeds=(1,))
        run_sweep(grid, store=store)
        (key,) = store.keys()
        with open(os.path.join(store.root, f"{key}.json"), "w") as fh:
            fh.write("{not json")
        results = run_sweep(grid, store=store)
        assert results.executed == 1

    def test_cached_payload_matches_fresh(self, tmp_path):
        store = ResultStore(str(tmp_path))
        grid = tiny_grid(lbs=["reps"], seeds=(3,))
        fresh = run_sweep(grid, store=store)
        cached = run_sweep(grid, store=store)
        assert fresh.results[0].metrics == cached.results[0].metrics

    def test_store_survives_json_roundtrip(self, tmp_path):
        store = ResultStore(str(tmp_path))
        task = make_task("reps", TINY_TOPO, TINY_WORKLOAD, seed=1,
                         max_us=2_000_000.0)
        payload = execute_task(task)
        store.put(task_key(task), payload)
        assert store.get(task_key(task)) == \
            json.loads(json.dumps(payload))


class TestDeterminism:
    def test_serial_equals_parallel(self):
        """The acceptance bar: a 3-lb x 4-seed grid on 1 worker and on 2
        workers yields identical per-task metrics and aggregates."""
        grid = tiny_grid(lbs=["ecmp", "ops", "reps"], seeds=(1, 2, 3, 4))
        serial = run_sweep(grid, workers=1)
        parallel = run_sweep(grid, workers=2)
        assert len(serial) == len(parallel) == 12
        for s, p in zip(serial, parallel):
            assert s.task == p.task
            assert s.metrics == p.metrics
        agg_s = serial.aggregate("max_fct_us")
        agg_p = parallel.aggregate("max_fct_us")
        assert {g: a.samples for g, a in agg_s.items()} == \
            {g: a.samples for g, a in agg_p.items()}

    def test_seeds_actually_vary_runs(self):
        grid = tiny_grid(lbs=["ecmp"], seeds=(1, 2, 3, 4))
        fcts = [r.value("max_fct_us") for r in run_sweep(grid)]
        assert len(set(fcts)) > 1


class TestAggregation:
    def test_mean_and_p99_across_seeds(self):
        grid = tiny_grid(seeds=(1, 2, 3))
        results = run_sweep(grid)
        agg = results.aggregate("max_fct_us")
        assert len(agg) == 2  # one group per lb
        for group, a in agg.items():
            assert group.seed == -1
            assert a.n == 3
            assert a.min <= a.mean <= a.max
            assert a.percentile(99) == a.max

    def test_duplicate_tasks_deduped(self):
        task = make_task("reps", TINY_TOPO, TINY_WORKLOAD, seed=1,
                         max_us=2_000_000.0)
        results = run_sweep([task, task])
        assert results.executed == 1

    def test_table_rows_render(self):
        from repro.harness import format_sweep_table
        results = run_sweep(tiny_grid(seeds=(1, 2)))
        text = format_sweep_table("t", results, "avg_fct_us")
        assert "avg_fct_us" in text
        assert "reps" in text

    def test_unknown_metric_raises(self):
        results = run_sweep(tiny_grid(lbs=["reps"], seeds=(1,)))
        with pytest.raises(KeyError, match="nope"):
            results.results[0].value("nope")


class TestWorkloadKinds:
    def test_collective_reports_finish_us(self):
        task = make_task(
            "reps", TINY_TOPO,
            WorkloadSpec(kind="collective", pattern="ring_allreduce",
                         msg_bytes=128 * 1024),
            seed=1, max_us=20_000_000.0)
        payload = execute_task(task)
        assert payload["extra"]["finish_us"] > 0

    def test_trace_workload_runs(self):
        task = make_task(
            "reps", TINY_TOPO,
            WorkloadSpec(kind="trace", pattern="websearch", load=0.4,
                         duration_us=20.0),
            seed=1, max_us=5_000_000.0)
        payload = execute_task(task)
        assert payload["metrics"]["flows_total"] > 0

    def test_unknown_kind_rejected(self):
        task = make_task("reps", TINY_TOPO,
                         WorkloadSpec(kind="quantum"), seed=1)
        with pytest.raises(ValueError, match="unknown workload kind"):
            execute_task(task)

    def test_failure_spec_applies(self):
        spec = FailureSpec.make("degrade_fraction", fraction=0.5,
                                gbps=50.0, seed=3)
        slow = execute_task(make_task(
            "ecmp", TINY_TOPO, TINY_WORKLOAD, seed=1, failure=spec,
            max_us=2_000_000.0))
        fast = execute_task(make_task(
            "ecmp", TINY_TOPO, TINY_WORKLOAD, seed=1,
            max_us=2_000_000.0))
        assert slow["metrics"]["max_fct_us"] > \
            fast["metrics"]["max_fct_us"]
