"""Sweep harness: grid expansion, caching, parallel determinism."""

from __future__ import annotations

import json
import os

import pytest

import repro.harness.sweep as sweep_mod
from repro.harness.sweep import (
    FailureSpec,
    ResultStore,
    SweepGrid,
    WorkloadSpec,
    execute_task,
    make_model_task,
    make_task,
    run_sweep,
    simulator_version,
    spawn_seeds,
    task_key,
)
from repro.sim.topology import TopologyParams

TINY_TOPO = {"n_hosts": 8, "hosts_per_t0": 4}
TINY_WORKLOAD = WorkloadSpec(kind="synthetic", pattern="permutation",
                             msg_bytes=128 * 1024)


def tiny_grid(**overrides) -> SweepGrid:
    kw = dict(lbs=["ops", "reps"], workloads=[TINY_WORKLOAD],
              topos=[TINY_TOPO], seeds=(1, 2),
              scenario_kw={"max_us": 2_000_000.0})
    kw.update(overrides)
    return SweepGrid(**kw)


class TestGridExpansion:
    def test_cross_product_size(self):
        grid = tiny_grid(lbs=["ecmp", "ops", "reps"], seeds=(1, 2, 3, 4),
                         axes={"evs_size": [16, 64]})
        assert len(grid.tasks()) == 3 * 4 * 2

    def test_axis_values_reach_scenario(self):
        grid = tiny_grid(axes={"evs_size": [16, 64]})
        evs = {dict(t.scenario)["evs_size"] for t in grid.tasks()}
        assert evs == {16, 64}

    def test_explicit_seeds_win_over_root_seed(self):
        grid = tiny_grid(seeds=(5, 6), root_seed=1, n_seeds=4)
        assert {t.seed for t in grid.tasks()} == {5, 6}

    def test_seeds_spawned_from_root(self):
        grid = tiny_grid(seeds=(), root_seed=42, n_seeds=3)
        assert sorted({t.seed for t in grid.tasks()}) == \
            sorted(spawn_seeds(42, 3))

    def test_topology_params_accepted(self):
        task = make_task("reps", TopologyParams(n_hosts=8, hosts_per_t0=4),
                         TINY_WORKLOAD, seed=1)
        assert dict(task.topo)["n_hosts"] == 8

    def test_unknown_scenario_key_rejected(self):
        with pytest.raises(ValueError, match="unsupported scenario"):
            make_task("reps", TINY_TOPO, TINY_WORKLOAD, seed=1,
                      warp_factor=5.0)

    def test_unknown_probe_rejected(self):
        with pytest.raises(ValueError, match="unknown probes"):
            make_task("reps", TINY_TOPO, TINY_WORKLOAD, seed=1,
                      probes=("quantum_telemetry",))


class TestSeeding:
    def test_spawn_is_deterministic(self):
        assert spawn_seeds(7, 4) == spawn_seeds(7, 4)

    def test_spawn_is_prefix_stable(self):
        assert spawn_seeds(7, 8)[:4] == spawn_seeds(7, 4)

    def test_distinct_roots_distinct_seeds(self):
        assert set(spawn_seeds(1, 4)).isdisjoint(spawn_seeds(2, 4))


class TestTaskKey:
    def test_stable_across_processes_and_orders(self):
        a = make_task("reps", TINY_TOPO, TINY_WORKLOAD, seed=1,
                      evs_size=64, max_us=1000.0)
        b = make_task("reps", dict(reversed(list(TINY_TOPO.items()))),
                      TINY_WORKLOAD, seed=1, max_us=1000.0, evs_size=64)
        assert task_key(a) == task_key(b)

    def test_sensitive_to_every_axis(self):
        base = make_task("reps", TINY_TOPO, TINY_WORKLOAD, seed=1)
        keys = {task_key(base)}
        variants = [
            make_task("ops", TINY_TOPO, TINY_WORKLOAD, seed=1),
            make_task("reps", TINY_TOPO, TINY_WORKLOAD, seed=2),
            make_task("reps", {"n_hosts": 16, "hosts_per_t0": 4},
                      TINY_WORKLOAD, seed=1),
            make_task("reps", TINY_TOPO,
                      WorkloadSpec(kind="synthetic", pattern="tornado",
                                   msg_bytes=128 * 1024), seed=1),
            make_task("reps", TINY_TOPO, TINY_WORKLOAD, seed=1,
                      evs_size=64),
            make_task("reps", TINY_TOPO, TINY_WORKLOAD, seed=1,
                      failure=FailureSpec.make("ber", ber=0.01)),
        ]
        for v in variants:
            keys.add(task_key(v))
        assert len(keys) == 7

    def test_inapplicable_workload_fields_share_key(self):
        """workload_seed never reaches a collective run, so it must not
        mint distinct cache entries for identical simulations."""
        def coll(seed):
            return make_task(
                "reps", TINY_TOPO,
                WorkloadSpec(kind="collective", pattern="ring_allreduce",
                             msg_bytes=128 * 1024, workload_seed=seed),
                seed=1)
        assert task_key(coll(1)) == task_key(coll(2))
        # but for synthetic workloads it is real entropy
        syn1 = make_task("reps", TINY_TOPO,
                         WorkloadSpec(workload_seed=1), seed=1)
        syn2 = make_task("reps", TINY_TOPO,
                         WorkloadSpec(workload_seed=2), seed=1)
        assert task_key(syn1) != task_key(syn2)

    def test_failure_spec_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown failure kind"):
            FailureSpec.make("meteor_strike", fraction=1.0)

    def test_probes_change_key(self):
        plain = make_task("reps", TINY_TOPO, TINY_WORKLOAD, seed=1)
        probed = make_task("reps", TINY_TOPO, TINY_WORKLOAD, seed=1,
                           probes=("freeze_entries",))
        assert task_key(plain) != task_key(probed)


class TestSimulatorVersion:
    def test_stable_and_hexish(self):
        v = simulator_version()
        assert v == simulator_version()
        assert len(v) == 16
        int(v, 16)

    def test_version_component_changes_key(self, monkeypatch):
        task = make_task("reps", TINY_TOPO, TINY_WORKLOAD, seed=1)
        before = task_key(task)
        monkeypatch.setattr(sweep_mod, "simulator_version",
                            lambda: "deadbeefdeadbeef")
        assert task_key(task) != before

    def test_stale_simulator_artifact_recomputed(self, tmp_path,
                                                 monkeypatch):
        """An artifact written by an older simulator must miss: its key
        embeds the old version, so the new run stores a fresh one."""
        store = ResultStore(str(tmp_path))
        grid = tiny_grid(lbs=["reps"], seeds=(1,))
        monkeypatch.setattr(sweep_mod, "simulator_version",
                            lambda: "0ld51mver510n000")
        run_sweep(grid, store=store)
        monkeypatch.undo()
        results = run_sweep(grid, store=store)
        assert results.executed == 1
        assert len(store) == 2  # old + new artifacts coexist until prune


class TestStoreCaching:
    def test_cache_miss_then_hit(self, tmp_path):
        store = ResultStore(str(tmp_path / "campaign"))
        grid = tiny_grid()
        first = run_sweep(grid, store=store)
        assert (first.executed, first.cached) == (4, 0)
        assert len(store) == 4
        again = run_sweep(grid, store=store)
        assert (again.executed, again.cached) == (0, 4)

    def test_partial_cache_runs_only_missing(self, tmp_path):
        store = ResultStore(str(tmp_path))
        small = tiny_grid(lbs=["reps"])
        run_sweep(small, store=store)
        grown = tiny_grid(lbs=["ops", "reps"])
        results = run_sweep(grown, store=store)
        assert results.cached == 2
        assert results.executed == 2

    def test_corrupt_artifact_recomputed(self, tmp_path):
        store = ResultStore(str(tmp_path))
        grid = tiny_grid(lbs=["reps"], seeds=(1,))
        run_sweep(grid, store=store)
        (key,) = store.keys()
        with open(os.path.join(store.root, f"{key}.json"), "w") as fh:
            fh.write("{not json")
        results = run_sweep(grid, store=store)
        assert results.executed == 1

    def test_cached_payload_matches_fresh(self, tmp_path):
        store = ResultStore(str(tmp_path))
        grid = tiny_grid(lbs=["reps"], seeds=(3,))
        fresh = run_sweep(grid, store=store)
        cached = run_sweep(grid, store=store)
        assert fresh.results[0].metrics == cached.results[0].metrics

    def test_store_survives_json_roundtrip(self, tmp_path):
        store = ResultStore(str(tmp_path))
        task = make_task("reps", TINY_TOPO, TINY_WORKLOAD, seed=1,
                         max_us=2_000_000.0)
        payload = execute_task(task)
        store.put(task_key(task), payload)
        assert store.get(task_key(task)) == \
            json.loads(json.dumps(payload))


class TestDeterminism:
    def test_serial_equals_parallel(self):
        """The acceptance bar: a 3-lb x 4-seed grid on 1 worker and on 2
        workers yields identical per-task metrics and aggregates."""
        grid = tiny_grid(lbs=["ecmp", "ops", "reps"], seeds=(1, 2, 3, 4))
        serial = run_sweep(grid, workers=1)
        parallel = run_sweep(grid, workers=2)
        assert len(serial) == len(parallel) == 12
        for s, p in zip(serial, parallel):
            assert s.task == p.task
            assert s.metrics == p.metrics
        agg_s = serial.aggregate("max_fct_us")
        agg_p = parallel.aggregate("max_fct_us")
        assert {g: a.samples for g, a in agg_s.items()} == \
            {g: a.samples for g, a in agg_p.items()}

    def test_seeds_actually_vary_runs(self):
        grid = tiny_grid(lbs=["ecmp"], seeds=(1, 2, 3, 4))
        fcts = [r.value("max_fct_us") for r in run_sweep(grid)]
        assert len(set(fcts)) > 1


class TestAggregation:
    def test_mean_and_p99_across_seeds(self):
        grid = tiny_grid(seeds=(1, 2, 3))
        results = run_sweep(grid)
        agg = results.aggregate("max_fct_us")
        assert len(agg) == 2  # one group per lb
        for group, a in agg.items():
            assert group.seed == -1
            assert a.n == 3
            assert a.min <= a.mean <= a.max
            assert a.percentile(99) == a.max

    def test_duplicate_tasks_deduped(self):
        task = make_task("reps", TINY_TOPO, TINY_WORKLOAD, seed=1,
                         max_us=2_000_000.0)
        results = run_sweep([task, task])
        assert results.executed == 1

    def test_table_rows_render(self):
        from repro.harness import format_sweep_table
        results = run_sweep(tiny_grid(seeds=(1, 2)))
        text = format_sweep_table("t", results, "avg_fct_us")
        assert "avg_fct_us" in text
        assert "reps" in text

    def test_unknown_metric_raises(self):
        results = run_sweep(tiny_grid(lbs=["reps"], seeds=(1,)))
        with pytest.raises(KeyError, match="nope"):
            results.results[0].value("nope")


class TestManifestAndPrune:
    def test_put_maintains_manifest(self, tmp_path):
        store = ResultStore(str(tmp_path))
        grid = tiny_grid(lbs=["reps"], seeds=(1, 2))
        run_sweep(grid, store=store)
        manifest = ResultStore(str(tmp_path)).manifest()
        assert sorted(manifest) == store.keys()
        for entry in manifest.values():
            assert entry["sim"] == simulator_version()
            assert entry["label"]
            assert entry["written_at"] > 0

    def test_prune_keep_set(self, tmp_path):
        store = ResultStore(str(tmp_path))
        grid = tiny_grid(lbs=["ops", "reps"], seeds=(1,))
        results = run_sweep(grid, store=store)
        keep = [results.results[0].key]
        removed = store.prune(keep=keep)
        assert len(removed) == 1
        assert store.keys() == keep
        assert sorted(store.manifest()) == keep

    def test_concurrent_stores_merge_manifest(self, tmp_path):
        """Two store instances sharing a directory must not clobber
        each other's manifest entries (read-merge-write per put)."""
        a = ResultStore(str(tmp_path))
        b = ResultStore(str(tmp_path))
        run_sweep(tiny_grid(lbs=["ops"], seeds=(1,)), store=a)
        run_sweep(tiny_grid(lbs=["reps"], seeds=(1,)), store=b)
        manifest = ResultStore(str(tmp_path)).manifest()
        assert sorted(manifest) == a.keys()
        assert len(manifest) == 2

    def test_manifest_read_repairs_lost_entries(self, tmp_path):
        """Simulate the two-process lost-update race: an index entry
        vanishes but the artifact exists — reads must resynthesize it
        (and drop entries whose artifact was deleted)."""
        import json as _json
        store = ResultStore(str(tmp_path))
        run_sweep(tiny_grid(lbs=["ops", "reps"], seeds=(1,)),
                  store=store)
        index_path = os.path.join(str(tmp_path), ResultStore.MANIFEST)
        with open(index_path) as fh:
            index = _json.load(fh)
        lost_key, kept_key = sorted(index)
        removed_artifact = index.pop(kept_key)  # keep entry, drop file
        del removed_artifact
        os.remove(os.path.join(str(tmp_path), f"{kept_key}.json"))
        index[kept_key] = {"label": "ghost"}  # entry without artifact
        del index[lost_key]                   # artifact without entry
        with open(index_path, "w") as fh:
            _json.dump(index, fh)
        manifest = store.manifest()
        assert sorted(manifest) == [lost_key]
        assert manifest[lost_key]["sim"] == simulator_version()
        assert manifest[lost_key]["label"]

    def test_prune_stale_sim_versions(self, tmp_path, monkeypatch):
        store = ResultStore(str(tmp_path))
        grid = tiny_grid(lbs=["reps"], seeds=(1,))
        monkeypatch.setattr(sweep_mod, "simulator_version",
                            lambda: "0ld51mver510n000")
        run_sweep(grid, store=store)
        monkeypatch.undo()
        run_sweep(grid, store=store)
        assert len(store) == 2
        removed = store.prune()
        assert len(removed) == 1
        (survivor,) = store.keys()
        assert store.get(survivor)["sim"] == simulator_version()

    def test_ci95_column_in_table(self):
        from repro.harness.report import SWEEP_HEADERS
        results = run_sweep(tiny_grid(lbs=["reps"], seeds=(1, 2, 3)))
        agg = results.aggregate("max_fct_us")
        (group,) = agg
        row = results.table("max_fct_us")[0]
        assert SWEEP_HEADERS.index("ci95") == 3
        assert row[3] == round(agg[group].ci95, 2)
        assert agg[group].ci95 > 0  # seeds vary, so the CI is real


class TestProbes:
    def test_freeze_probe_in_extra(self):
        task = make_task("reps", TINY_TOPO, TINY_WORKLOAD, seed=1,
                         max_us=2_000_000.0, probes=("freeze_entries",))
        payload = execute_task(task)
        assert payload["extra"]["freeze_entries"] == 0.0

    def test_probes_rejected_for_mixed_and_model(self):
        mixed = WorkloadSpec(kind="mixed", msg_bytes=128 * 1024)
        with pytest.raises(ValueError, match="not supported"):
            make_task("reps", TINY_TOPO, mixed, seed=1,
                      probes=("freeze_entries",))
        model = WorkloadSpec(kind="model", pattern="footprint")
        with pytest.raises(ValueError, match="not supported"):
            make_task("model", (), model, seed=1,
                      probes=("freeze_entries",))

    def test_telemetry_probe_needs_bucket(self):
        task = make_task("reps", TINY_TOPO, TINY_WORKLOAD, seed=1,
                         max_us=2_000_000.0, probes=("queue_telemetry",))
        with pytest.raises(ValueError, match="telemetry_bucket_us"):
            execute_task(task)

    def test_telemetry_probe_outputs(self):
        task = make_task("reps", TINY_TOPO, TINY_WORKLOAD, seed=1,
                         max_us=2_000_000.0, telemetry_bucket_us=2.0,
                         probes=("queue_telemetry", "uplink_share"))
        extra = execute_task(task)["extra"]
        assert extra["kmin_kb"] > 0
        assert extra["steady_queue_kb"] >= 0
        assert extra["slow_uplink_share"] > 0


class TestWorkloadKinds:
    def test_collective_reports_finish_us(self):
        task = make_task(
            "reps", TINY_TOPO,
            WorkloadSpec(kind="collective", pattern="ring_allreduce",
                         msg_bytes=128 * 1024),
            seed=1, max_us=20_000_000.0)
        payload = execute_task(task)
        assert payload["extra"]["finish_us"] > 0

    def test_trace_workload_runs(self):
        task = make_task(
            "reps", TINY_TOPO,
            WorkloadSpec(kind="trace", pattern="websearch", load=0.4,
                         duration_us=20.0),
            seed=1, max_us=5_000_000.0)
        payload = execute_task(task)
        assert payload["metrics"]["flows_total"] > 0

    def test_unknown_kind_rejected(self):
        task = make_task("reps", TINY_TOPO,
                         WorkloadSpec(kind="quantum"), seed=1)
        with pytest.raises(ValueError, match="unknown workload kind"):
            execute_task(task)

    def test_failure_spec_applies(self):
        spec = FailureSpec.make("degrade_fraction", fraction=0.5,
                                gbps=50.0, seed=3)
        slow = execute_task(make_task(
            "ecmp", TINY_TOPO, TINY_WORKLOAD, seed=1, failure=spec,
            max_us=2_000_000.0))
        fast = execute_task(make_task(
            "ecmp", TINY_TOPO, TINY_WORKLOAD, seed=1,
            max_us=2_000_000.0))
        assert slow["metrics"]["max_fct_us"] > \
            fast["metrics"]["max_fct_us"]

    def test_mixed_workload_reports_background(self):
        task = make_task(
            "reps", TINY_TOPO,
            WorkloadSpec(kind="mixed", pattern="permutation",
                         msg_bytes=128 * 1024, background_lb="ecmp",
                         background_fraction=0.25),
            seed=7, max_us=5_000_000.0)
        payload = execute_task(task)
        assert payload["extra"]["bg_flows_total"] == 2.0
        assert payload["extra"]["bg_max_fct_us"] > 0
        # main metrics exclude the background flows
        assert payload["metrics"]["flows_total"] == 6

    def test_model_workload_runs_through_sweep(self, tmp_path):
        store = ResultStore(str(tmp_path))
        tasks = [make_model_task("footprint", seed=1, buffer_size=b)
                 for b in (1, 8)]
        results = run_sweep(tasks, store=store)
        assert results.executed == 2
        assert results.results[0].value("total_bits") == 74.0
        assert results.results[1].value("total_bits") == 193.0
        again = run_sweep(tasks, store=store)
        assert again.cached == 2

    def test_model_params_change_key(self):
        a = make_model_task("imbalance", seed=1, evs_exponent=5)
        b = make_model_task("imbalance", seed=1, evs_exponent=6)
        assert task_key(a) != task_key(b)

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown model"):
            execute_task(make_model_task("astrology", seed=1))
