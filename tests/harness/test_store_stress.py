"""Store v2 at campaign scale: 5k tasks, serial + batched backends.

What the JSON store could never promise: a 5000-task campaign through
the **serial** backend costs 5000 segment appends and *zero* manifest
rewrites (entries ride the frames), and through the **batched**
backend the whole sweep is O(batches) store I/O.  Both runs must stay
equivalence-suite identical — byte-identical payload reads for every
key — and a re-run must be fully cached.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.harness.backends import BatchedBackend, SerialBackend
from repro.harness.store import ColumnarStore
from repro.harness.sweep import make_model_task, run_sweep

N_TASKS = 5000


def grid():
    """5k distinct analytic-model tasks (microseconds each): the
    synthetic campaign — store overhead dominates, simulation noise
    does not."""
    return [make_model_task("footprint", seed=i, buffer_size=8)
            for i in range(N_TASKS)]


class CountingStore(ColumnarStore):
    """A v2 store that counts its own I/O."""

    def __init__(self, root: str, **kwargs) -> None:
        super().__init__(root, **kwargs)
        self.frame_appends = 0
        self.manifest_writes = 0

    def _append_frame(self, records, entries):
        self.frame_appends += 1
        super()._append_frame(records, entries)

    def _write_json(self, path, doc):
        if os.path.basename(path) == self.MANIFEST:
            self.manifest_writes += 1
        super()._write_json(path, doc)


@pytest.fixture(scope="module")
def serial_store(tmp_path_factory):
    store = CountingStore(str(tmp_path_factory.mktemp("serial")))
    results = run_sweep(grid(), store=store, backend=SerialBackend())
    return store, results


@pytest.fixture(scope="module")
def batched_store(tmp_path_factory):
    store = CountingStore(str(tmp_path_factory.mktemp("batched")))
    results = run_sweep(grid(), store=store,
                        backend=BatchedBackend(workers=1))
    return store, results


class TestStress5k:
    def test_both_backends_execute_everything(self, serial_store,
                                              batched_store):
        for _store, results in (serial_store, batched_store):
            assert len(results) == N_TASKS
            assert results.executed == N_TASKS

    def test_equivalence_suite_byte_identity(self, serial_store,
                                             batched_store):
        a, _ = serial_store
        b, _ = batched_store
        keys = a.keys()
        assert keys == b.keys() and len(keys) == N_TASKS
        for key in keys:
            assert json.dumps(a.get(key), sort_keys=True) == \
                json.dumps(b.get(key), sort_keys=True)

    def test_store_io_counts(self, serial_store, batched_store):
        serial, _ = serial_store
        batched, _ = batched_store
        # serial: one append per task, but NO quadratic manifest churn
        assert serial.frame_appends == N_TASKS
        assert serial.manifest_writes == 0
        # batched: O(batches) everywhere (workers * 4 batches here)
        assert batched.frame_appends <= 8
        assert batched.manifest_writes == 0
        # the on-disk frame structure matches what we counted
        assert batched.verify()["blocks"] == batched.frame_appends

    def test_rerun_is_fully_cached(self, batched_store):
        store, _ = batched_store
        again = run_sweep(grid(), store=ColumnarStore(store.root),
                          backend=SerialBackend())
        assert again.executed == 0 and again.cached == N_TASKS

    def test_compact_collapses_serial_frames(self, serial_store):
        store, _ = serial_store
        stats = store.compact()
        assert stats["records_written"] == N_TASKS
        # 5000 one-record frames become ceil(5000/512) blocks and the
        # file shrinks (per-frame overhead + better compression)
        assert stats["after"]["blocks"] == -(-N_TASKS // 512)
        assert stats["after"]["bytes"] < stats["before"]["bytes"]
        reopened = ColumnarStore(store.root)
        assert len(reopened.keys()) == N_TASKS
        assert reopened.verify()["ok"]

    def test_manifest_materializes_on_demand(self, batched_store):
        store, _ = batched_store
        assert not os.path.exists(os.path.join(store.root,
                                               store.MANIFEST))
        manifest = store.repair_manifest()
        assert len(manifest) == N_TASKS
        assert os.path.exists(os.path.join(store.root, store.MANIFEST))
