"""Windowed time-series probes and the fig02_timeseries pipeline.

The probes' contract: one sample per telemetry window, shared ``t_us``
grid, values in their natural ranges — and arrays travel the sweep
layer via the artifact's ``series`` section (scalars keep riding
``extra``), identically fresh or cached, on either store format.
"""

from __future__ import annotations

import pytest

from repro.harness.runner import (
    RESULT_PROBES,
    Scenario,
    fail_cable_schedule_hook,
    run_synthetic,
)
from repro.harness.store import ColumnarStore
from repro.harness.sweep import (
    FailureSpec,
    ResultStore,
    WorkloadSpec,
    execute_task,
    make_task,
    run_sweep,
)
from repro.sim.topology import TopologyParams

SERIES_PROBES = ("goodput_series", "queue_series",
                 "uplink_share_series", "ev_recycle_series")

TINY_TOPO = {"n_hosts": 8, "hosts_per_t0": 4}
#: ~55 us of simulated time -> ~10 windows at the 5 us bucket
TINY_MSG = 2 << 20


def run_small(lb="reps", *, bucket=5.0, failure=None):
    scenario = Scenario(
        lb=lb, topo=TopologyParams(**TINY_TOPO), seed=1,
        telemetry_bucket_us=bucket, max_us=2_000_000.0,
        failures=failure)
    return run_synthetic(scenario, "tornado", TINY_MSG)


def series_task(lb="reps", probes=SERIES_PROBES):
    return make_task(lb, TINY_TOPO,
                     WorkloadSpec(kind="synthetic", pattern="tornado",
                                  msg_bytes=TINY_MSG),
                     seed=1, telemetry_bucket_us=5.0, probes=probes,
                     max_us=2_000_000.0)


class TestSeriesProbes:
    def test_every_series_probe_needs_telemetry(self):
        result = run_small(bucket=None)
        for name in SERIES_PROBES:
            with pytest.raises(ValueError,
                               match="telemetry_bucket_us"):
                RESULT_PROBES[name](result)

    def test_shared_window_grid(self):
        result = run_small()
        lengths = set()
        for name in SERIES_PROBES:
            out = RESULT_PROBES[name](result)
            assert "t_us" in out
            for values in out.values():
                lengths.add(len(values))
        assert len(lengths) == 1 and lengths.pop() > 3

    def test_value_ranges(self):
        result = run_small()
        goodput = RESULT_PROBES["goodput_series"](result)
        assert all(v >= 0 for v in goodput["goodput_gbps"])
        assert max(goodput["goodput_gbps"]) > 0
        queue = RESULT_PROBES["queue_series"](result)
        assert all(v >= 0 for v in queue["queue_kb"])
        share = RESULT_PROBES["uplink_share_series"](result)
        assert all(0.0 <= v <= 1.0 for v in share["uplink_share"])
        recycle = RESULT_PROBES["ev_recycle_series"](result)
        assert all(0.0 <= v <= 1.0 for v in recycle["ev_recycle_rate"])

    def test_recycle_rate_is_lb_aware(self):
        """REPS recycles (rate climbs above zero); OPS never does."""
        reps = RESULT_PROBES["ev_recycle_series"](run_small("reps"))
        assert max(reps["ev_recycle_rate"]) > 0.5
        ops = RESULT_PROBES["ev_recycle_series"](run_small("ops"))
        assert max(ops["ev_recycle_rate"], default=0.0) == 0.0

    def test_share_drops_after_uplink_failure(self):
        """The failed uplink's traffic share collapses for REPS."""
        hook = fail_cable_schedule_hook([(0, 30.0, None)])
        result = run_small("reps", failure=hook)
        share = RESULT_PROBES["uplink_share_series"](result)
        assert share["uplink_share"][-1] <= 0.05

    def test_sampler_registered_and_stopped(self):
        result = run_small()
        assert result.lb_sampler in result.network.recorders
        assert not result.lb_sampler._running  # stopped by net.run


class TestSeriesThroughSweep:
    def test_execute_task_splits_series_from_extra(self):
        payload = execute_task(series_task())
        assert set(payload["series"]) == {
            "t_us", "goodput_gbps", "queue_kb", "uplink_share",
            "ev_recycle_rate"}
        for values in payload["series"].values():
            assert isinstance(values, list) and values
        # scalars only in extra — arrays must not leak there
        assert all(not isinstance(v, list)
                   for v in payload["extra"].values())

    def test_scalar_probes_still_ride_extra(self):
        payload = execute_task(series_task(
            probes=("queue_telemetry", "goodput_series")))
        assert "steady_queue_kb" in payload["extra"]
        assert "goodput_gbps" in payload["series"]

    @pytest.mark.parametrize("store_cls", [ResultStore, ColumnarStore],
                             ids=["json", "columnar"])
    def test_series_identical_fresh_and_cached(self, tmp_path,
                                               store_cls):
        task = series_task()
        store = store_cls(str(tmp_path))
        fresh = run_sweep([task], store=store)
        cached = run_sweep([task], store=store_cls(str(tmp_path)))
        assert cached.cached == 1
        assert fresh[task].series == cached[task].series
        assert fresh[task].series["goodput_gbps"]

    def test_probe_selection_changes_key(self):
        from repro.harness.sweep import task_key
        assert task_key(series_task()) != \
            task_key(series_task(probes=("goodput_series",)))


class TestFig02TimeseriesSpec:
    def test_registered_and_tagged(self):
        from repro.scenarios import get_figure
        spec = get_figure("fig02_timeseries")
        assert spec.metric_kind == "timeseries"
        assert spec.metric == "goodput_gbps"
        assert "timeseries" in spec.tags and "failures" in spec.tags
        assert spec.doc

    def test_matrix_carries_series_probes(self, monkeypatch):
        from repro.scenarios import get_figure
        monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")
        tasks = get_figure("fig02_timeseries").build()
        assert sorted(tasks) == ["ops", "reps"]
        for task in tasks.values():
            assert set(SERIES_PROBES) <= set(task.probes)
            assert task.failure is not None

    def test_series_accessor_raises_on_unknown_name(self, tmp_path):
        from repro.scenarios import FigureSpec
        from repro.scenarios.registry import run_figure
        spec = FigureSpec(
            fig_id="stub_series", figure="stub", title="stub",
            build=lambda: {"reps": series_task()},
            metric="goodput_gbps", metric_kind="timeseries")
        result = run_figure(spec, store=ColumnarStore(str(tmp_path)))
        assert len(result.series("reps")) > 0
        assert result.all_series()["reps"]["t_us"]
        with pytest.raises(KeyError, match="no series"):
            result.series("reps", "nonexistent")
