"""Analytical-model runners behind ``WorkloadSpec(kind="model")``."""

from __future__ import annotations

import random

import pytest

from repro.harness.model_tasks import MODEL_RUNNERS, run_model
from repro.models.balls_bins import batched_balls_into_bins
from repro.models.recycled import RecycledParams, recycled_balls_into_bins


class TestRunModel:
    def test_unknown_model(self):
        with pytest.raises(ValueError, match="unknown model"):
            run_model("tea_leaves", {}, seed=1)

    def test_every_runner_returns_scalars(self):
        params = {
            "imbalance": {"evs_exponent": 5, "n_uplinks": 8,
                          "n_flows": 1, "repeats": 2},
            "balls_bins_curve": {"ports": 4, "rounds": 50, "repeats": 1,
                                 "checkpoints": (50,)},
            "balls_bins_ops": {"n_bins": 4, "rounds": 50,
                               "checkpoints": (10,), "tail": 10},
            "recycled_bins": {"n_bins": 4, "tau": 4, "b": 2.0,
                              "rounds": 50, "checkpoints": (10,),
                              "tail": 10},
            "trace_quantiles": {"trace": "websearch", "samples": 200,
                                "quantiles": (50,)},
            "footprint": {"buffer_size": 8},
        }
        assert set(params) == set(MODEL_RUNNERS)
        for pattern, p in params.items():
            out = run_model(pattern, p, seed=3)
            assert out, pattern
            assert all(isinstance(v, float) for v in out.values()), \
                pattern

    def test_deterministic_given_seed(self):
        p = {"n_bins": 4, "rounds": 100, "checkpoints": (100,),
             "tail": 20}
        assert run_model("balls_bins_ops", p, seed=9) == \
            run_model("balls_bins_ops", p, seed=9)
        assert run_model("balls_bins_ops", p, seed=9) != \
            run_model("balls_bins_ops", p, seed=10)


class TestMatchesDirectModels:
    """The runners reproduce the figures' original ad-hoc loops."""

    def test_ops_trace_checkpoints(self):
        trace = batched_balls_into_bins(5, 200, lam=1.0,
                                        rng=random.Random(18))
        out = run_model("balls_bins_ops",
                        {"n_bins": 5, "rounds": 200, "lam": 1.0,
                         "checkpoints": (50, 200), "tail": 30},
                        seed=18)
        assert out["round_50"] == float(trace.max_load[49])
        assert out["round_200"] == float(trace.max_load[199])
        assert out["tail_peak"] == float(max(trace.max_load[-30:]))
        assert out["tail_avg"] == sum(trace.max_load[-30:]) / 30

    def test_recycled_trace_outputs(self):
        params = RecycledParams(n_bins=5, tau=8, b=4)
        trace = recycled_balls_into_bins(params, 300,
                                         rng=random.Random(18))
        out = run_model("recycled_bins",
                        {"n_bins": 5, "tau": 8, "b": 4, "rounds": 300,
                         "checkpoints": (300,), "tail": 50},
                        seed=18)
        assert out["round_300"] == float(trace.max_load[-1])
        assert out["remembered_fraction"] == \
            trace.remembered_fraction[-1]

    def test_footprint_matches_table1(self):
        out = run_model("footprint", {"buffer_size": 1}, seed=0)
        assert (out["total_bits"], out["total_bytes"]) == (74.0, 10.0)

    def test_trace_quantiles_ordered(self):
        out = run_model("trace_quantiles",
                        {"trace": "facebook", "samples": 2000,
                         "quantiles": (25, 50, 99)}, seed=4)
        assert out["p25"] <= out["p50"] <= out["p99"]
