"""Property-based tests of REPS invariants (hypothesis)."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reps import RepsConfig, RepsSender

# an operation is (kind, payload):
#   ("ack", ev, ecn) | ("send",) | ("fail",) | ("tick",)
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("ack"), st.integers(0, 255), st.booleans()),
        st.tuples(st.just("send")),
        st.tuples(st.just("fail")),
        st.tuples(st.just("tick")),
    ),
    max_size=200,
)


def _drive(sender: RepsSender, ops) -> None:
    now = 0
    for op in ops:
        now += 1_000_000  # 1 us per step
        if op[0] == "ack":
            sender.on_ack(ev=op[1], ecn=op[2], now=now)
        elif op[0] == "send":
            sender.next_entropy(now)
        elif op[0] == "fail":
            sender.on_failure_detection(now)
        # "tick" advances time only


@given(ops=_ops, buffer_size=st.integers(1, 16))
@settings(max_examples=150, deadline=None)
def test_valid_count_always_matches_buffer(ops, buffer_size):
    """numberOfValidEVs == number of slots with uses_left > 0, always."""
    s = RepsSender(RepsConfig(buffer_size=buffer_size, evs_size=256),
                   rng=random.Random(0))
    now = 0
    for op in ops:
        now += 1_000_000
        if op[0] == "ack":
            s.on_ack(ev=op[1], ecn=op[2], now=now)
        elif op[0] == "send":
            s.next_entropy(now)
        elif op[0] == "fail":
            s.on_failure_detection(now)
        valid_slots = sum(1 for _, uses in s.buffer_snapshot if uses > 0)
        assert valid_slots == s.valid_evs
        assert 0 <= s.valid_evs <= buffer_size


@given(ops=_ops)
@settings(max_examples=100, deadline=None)
def test_entropy_always_in_evs(ops):
    """Every EV handed to the wire is within the configured EVS."""
    s = RepsSender(RepsConfig(evs_size=64), rng=random.Random(1))
    now = 0
    for op in ops:
        now += 1_000_000
        if op[0] == "ack":
            s.on_ack(ev=op[1] % 64, ecn=op[2], now=now)
        elif op[0] == "fail":
            s.on_failure_detection(now)
        ev = s.next_entropy(now)
        assert 0 <= ev < 64


@given(evs=st.lists(st.integers(0, 1000), min_size=1, max_size=8))
@settings(max_examples=100, deadline=None)
def test_burst_of_acks_all_cached_fifo(evs):
    """Up to buffer-size good ACKs in a burst are all reusable, oldest
    first — the circular buffer's core guarantee (Sec. 3.1)."""
    s = RepsSender(RepsConfig(buffer_size=8, evs_size=1001),
                   rng=random.Random(2))
    for ev in evs:
        s.on_ack(ev=ev, ecn=False, now=0)
    got = [s.next_entropy(0) for _ in range(len(evs))]
    assert got == evs


@given(ops=_ops)
@settings(max_examples=100, deadline=None)
def test_never_crashes_and_head_in_range(ops):
    s = RepsSender(RepsConfig(buffer_size=8, evs_size=256),
                   rng=random.Random(3))
    _drive(s, ops)
    assert 0 <= s._head < 8  # noqa: SLF001 - deliberate white-box check


@given(ecn_evs=st.lists(st.integers(0, 255), min_size=1, max_size=50))
@settings(max_examples=50, deadline=None)
def test_ecn_marked_acks_never_enter_buffer(ecn_evs):
    s = RepsSender(RepsConfig(evs_size=256), rng=random.Random(4))
    for ev in ecn_evs:
        s.on_ack(ev=ev, ecn=True, now=0)
    assert s.valid_evs == 0
    assert all(uses == 0 for _, uses in s.buffer_snapshot)
