"""Unit tests for the REPS circular buffer (Algorithms 1 & 2 semantics)."""

from __future__ import annotations

import random

import pytest

from repro.core.reps import RepsConfig, RepsSender


def make(buffer_size=8, evs_size=256, **kw) -> RepsSender:
    return RepsSender(RepsConfig(buffer_size=buffer_size,
                                 evs_size=evs_size, **kw),
                      rng=random.Random(42))


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = RepsConfig()
        assert cfg.buffer_size == 8
        assert cfg.evs_size == 65536
        assert cfg.freezing_enabled

    def test_rejects_zero_buffer(self):
        with pytest.raises(ValueError):
            RepsSender(RepsConfig(buffer_size=0))

    def test_rejects_zero_evs(self):
        with pytest.raises(ValueError):
            RepsSender(RepsConfig(evs_size=0))

    def test_rejects_zero_lifespan(self):
        with pytest.raises(ValueError):
            RepsSender(RepsConfig(ev_lifespan=0))


class TestExploration:
    def test_empty_buffer_explores_random(self):
        r = make()
        evs = {r.next_entropy(0) for _ in range(50)}
        assert len(evs) > 10, "fresh sender must spray random EVs"
        assert all(0 <= ev < 256 for ev in evs)

    def test_explored_evs_respect_evs_size(self):
        r = make(evs_size=4)
        for _ in range(100):
            assert 0 <= r.next_entropy(0) < 4

    def test_exploration_counted(self):
        r = make()
        for _ in range(10):
            r.next_entropy(0)
        assert r.stats_explored == 10
        assert r.stats_recycled == 0


class TestCaching:
    def test_good_ack_cached_and_reused(self):
        r = make()
        r.on_ack(ev=77, ecn=False, now=0)
        assert r.valid_evs == 1
        assert r.next_entropy(1) == 77
        assert r.valid_evs == 0

    def test_ecn_marked_ack_discarded(self):
        r = make()
        r.on_ack(ev=77, ecn=True, now=0)
        assert r.valid_evs == 0
        # next send must explore, not reuse 77 deterministically
        r.rng = random.Random(3)
        assert r.stats_recycled == 0

    def test_fifo_reuse_order(self):
        """getNextEV must return the *oldest* valid EV (Algorithm 2 l.4)."""
        r = make()
        for ev in (10, 20, 30):
            r.on_ack(ev=ev, ecn=False, now=0)
        assert r.next_entropy(0) == 10
        assert r.next_entropy(0) == 20
        assert r.next_entropy(0) == 30

    def test_interleaved_ack_send(self):
        r = make()
        r.on_ack(ev=1, ecn=False, now=0)
        assert r.next_entropy(0) == 1
        r.on_ack(ev=2, ecn=False, now=0)
        r.on_ack(ev=3, ecn=False, now=0)
        assert r.next_entropy(0) == 2
        assert r.next_entropy(0) == 3

    def test_buffer_overflow_keeps_newest(self):
        """More ACKs than slots: oldest entries are overwritten."""
        r = make(buffer_size=4)
        for ev in range(10):
            r.on_ack(ev=ev, ecn=False, now=0)
        assert r.valid_evs == 4
        got = [r.next_entropy(0) for _ in range(4)]
        assert got == [6, 7, 8, 9]

    def test_validity_bit_reset_on_use(self):
        r = make()
        r.on_ack(ev=5, ecn=False, now=0)
        snapshot = dict.fromkeys([], None)
        r.next_entropy(0)
        # the slot still holds the EV but is no longer valid
        assert (5, 0) in r.buffer_snapshot
        assert snapshot is not None  # silence lint: snapshot unused

    def test_valid_count_matches_buffer(self):
        r = make(buffer_size=8)
        for ev in range(5):
            r.on_ack(ev=ev, ecn=False, now=0)
        valid_slots = sum(1 for _, uses in r.buffer_snapshot if uses > 0)
        assert valid_slots == r.valid_evs == 5

    def test_single_slot_buffer(self):
        r = make(buffer_size=1)
        r.on_ack(ev=9, ecn=False, now=0)
        r.on_ack(ev=11, ecn=False, now=0)
        assert r.valid_evs == 1
        assert r.next_entropy(0) == 11

    def test_exhausted_buffer_explores_again(self):
        r = make()
        r.on_ack(ev=50, ecn=False, now=0)
        assert r.next_entropy(0) == 50
        before = r.stats_explored
        r.next_entropy(0)
        assert r.stats_explored == before + 1


class TestReuseLifespan:
    """The Reuse-EVs coalescing variant (Sec. 4.5.1)."""

    def test_lifespan_allows_n_uses(self):
        r = make(ev_lifespan=3)
        r.on_ack(ev=42, ecn=False, now=0)
        assert [r.next_entropy(0) for _ in range(3)] == [42, 42, 42]
        assert r.valid_evs == 0

    def test_lifespan_fifo_across_entries(self):
        r = make(ev_lifespan=2)
        r.on_ack(ev=1, ecn=False, now=0)
        r.on_ack(ev=2, ecn=False, now=0)
        assert [r.next_entropy(0) for _ in range(4)] == [1, 1, 2, 2]

    def test_overwrite_valid_entry_keeps_count(self):
        r = make(buffer_size=2, ev_lifespan=5)
        r.on_ack(ev=1, ecn=False, now=0)
        r.on_ack(ev=2, ecn=False, now=0)
        r.on_ack(ev=3, ecn=False, now=0)  # overwrites slot of ev=1
        assert r.valid_evs == 2
