"""Freezing-mode behaviour (Sec. 3.2, Algorithm 1 lines 15-26)."""

from __future__ import annotations

import random

from repro.core.reps import RepsConfig, RepsSender

US = 1_000_000


def make(**kw) -> RepsSender:
    kw.setdefault("evs_size", 256)
    kw.setdefault("freezing_timeout_ps", 100 * US)
    return RepsSender(RepsConfig(**kw), rng=random.Random(9),
                      cwnd_pkts=lambda: 32)


class TestEnterFreezing:
    def test_failure_detection_enters_freezing(self):
        r = make()
        r.on_failure_detection(now=0)
        assert r.freezing

    def test_freezing_disabled_config(self):
        r = make(freezing_enabled=False)
        r.on_failure_detection(now=0)
        assert not r.freezing

    def test_no_reentry_while_frozen(self):
        r = make()
        r.on_failure_detection(now=0)
        assert r.stats_freeze_entries == 1
        r.on_failure_detection(now=1)
        assert r.stats_freeze_entries == 1

    def test_no_entry_during_explore_phase(self):
        """Algorithm 1 line 22: freezing requires exploreCounter == 0."""
        r = make()
        r.on_failure_detection(now=0)
        r.on_ack(ev=1, ecn=False, now=200 * US)  # exits, arms explorer
        assert not r.freezing
        assert r.explore_counter > 0
        r.on_failure_detection(now=201 * US)
        assert not r.freezing

    def test_timeout_hook_maps_to_failure_detection(self):
        r = make()
        r.on_timeout(ev=3, now=0)
        assert r.freezing

    def test_nack_never_freezes(self):
        """Trim NACKs are congestion losses: no freezing (Appendix A)."""
        r = make()
        r.on_nack(ev=3, now=0)
        assert not r.freezing


class TestFrozenBehaviour:
    def test_frozen_reuses_stale_entries(self):
        """Sec. 3.2 item 2: reuse buffer elements even if invalid."""
        r = make(buffer_size=4)
        for ev in (1, 2, 3, 4):
            r.on_ack(ev=ev, ecn=False, now=0)
        for _ in range(4):
            r.next_entropy(0)  # consume all valid entries
        r.on_failure_detection(now=0)
        # no valid entries remain; frozen sender cycles the stale ones
        got = {r.next_entropy(1) for _ in range(8)}
        assert got <= {1, 2, 3, 4}
        assert r.stats_frozen_reuse >= 8

    def test_frozen_never_explores(self):
        r = make(buffer_size=4)
        r.on_ack(ev=7, ecn=False, now=0)
        r.on_failure_detection(now=0)
        before = r.stats_explored
        for _ in range(20):
            r.next_entropy(1)
        assert r.stats_explored == before

    def test_frozen_with_empty_buffer_still_explores(self):
        """A sender that never cached anything cannot reuse: random EV."""
        r = make()
        r.on_failure_detection(now=0)
        ev = r.next_entropy(1)
        assert 0 <= ev < 256
        assert r.stats_explored == 1

    def test_fresh_acks_refill_buffer_while_frozen(self):
        r = make()
        r.on_failure_detection(now=0)
        r.on_ack(ev=9, ecn=False, now=1)
        assert r.freezing  # timeout not reached yet
        assert r.next_entropy(2) == 9


class TestExitFreezing:
    def test_exit_after_timeout_on_ack(self):
        r = make()
        r.on_failure_detection(now=0)
        r.on_ack(ev=1, ecn=False, now=50 * US)
        assert r.freezing, "before the timeout the sender stays frozen"
        r.on_ack(ev=2, ecn=False, now=150 * US)
        assert not r.freezing

    def test_exit_arms_explore_counter(self):
        r = make()
        r.on_failure_detection(now=0)
        r.on_ack(ev=1, ecn=False, now=150 * US)
        assert r.explore_counter == 32  # NUM_PKTS_CWND

    def test_explore_phase_mixes_random_probes(self):
        """After exiting, one packet per buffer-size uses a random EV.

        The buffer is kept fed with good ACKs, so every non-probe send
        recycles; the only exploration left is the periodic probe.
        """
        r = make(buffer_size=8)
        r.on_failure_detection(now=0)
        r.on_ack(ev=0, ecn=False, now=150 * US)  # exits freezing
        assert not r.freezing
        before = r.stats_explored
        for i in range(32):
            r.on_ack(ev=i, ecn=False, now=151 * US)
            r.next_entropy(151 * US)
        explored = r.stats_explored - before
        assert explored == 4, "32 sends / every 8th random = 4 probes"

    def test_reentry_possible_after_explore_drains(self):
        r = make()
        r.on_failure_detection(now=0)
        r.on_ack(ev=1, ecn=False, now=150 * US)
        for _ in range(r.explore_counter):
            r.next_entropy(151 * US)
        assert r.explore_counter == 0
        r.on_failure_detection(now=152 * US)
        assert r.freezing


class TestStuckBufferEscape:
    def test_send_path_exits_freezing_without_acks(self):
        """If every cached EV maps to a dead path, no ACK ever returns;
        the time-based exit must fire on the send path so the random
        probes can rediscover a healthy path (Sec. 3.2's escape hatch)."""
        r = make()
        r.on_ack(ev=13, ecn=False, now=0)  # cache one (soon-dead) EV
        r.on_failure_detection(now=0)
        assert r.freezing
        # far past the freezing timeout, with zero ACKs in between:
        r.next_entropy(500 * US)
        assert not r.freezing
        assert r.explore_counter > 0

    def test_probes_eventually_random_after_stuck_exit(self):
        r = make(buffer_size=4)
        for ev in (9, 9, 9, 9):
            r.on_ack(ev=ev, ecn=False, now=0)
        r.on_failure_detection(now=0)
        evs = {r.next_entropy(500 * US + i) for i in range(64)}
        assert evs - {9}, "random probes must appear after the exit"


class TestForcedFreezing:
    def test_force_freeze_is_sticky(self):
        """Fig. 19: forced freezing persists past the normal timeout."""
        r = make()
        r.force_freeze(now=0)
        r.on_ack(ev=1, ecn=False, now=500 * US)
        assert r.freezing

    def test_force_freeze_temporary(self):
        r = make()
        r.force_freeze(now=0, permanent=False)
        r.on_ack(ev=1, ecn=False, now=500 * US)
        assert not r.freezing
