"""Table 1: per-connection memory footprint."""

from __future__ import annotations

from repro.core.footprint import compute_footprint
from repro.core.reps import RepsConfig


class TestPaperNumbers:
    def test_default_config_is_193_bits(self):
        """Table 1: 8-element buffer totals 193 bits ~= 25 bytes."""
        fp = compute_footprint(RepsConfig())
        assert fp.total_bits == 193
        assert fp.total_bytes == 25

    def test_single_element_is_74_bits(self):
        """Table 1: 1-element buffer totals 74 bits ~= 10 bytes."""
        fp = compute_footprint(RepsConfig(buffer_size=1))
        assert fp.total_bits == 74
        assert fp.total_bytes == 10

    def test_global_bits_match_table(self):
        fp = compute_footprint(RepsConfig())
        assert fp.global_bits == {
            "head": 8,
            "numberOfValidEVs": 8,
            "exitFreezingMode": 32,
            "isFreezingMode": 1,
            "exploreCounter": 8,
        }

    def test_ev_width_is_16_bits_for_64k(self):
        fp = compute_footprint(RepsConfig(evs_size=65536))
        assert fp.ev_bits == 16


class TestScaling:
    def test_small_evs_saves_a_byte_per_element(self):
        """Sec. 3.3: a 256-value EVS shrinks each cached EV to 8 bits."""
        fp = compute_footprint(RepsConfig(evs_size=256))
        assert fp.ev_bits == 8
        assert fp.total_bits == 8 * (8 + 1) + 57

    def test_reuse_variant_widens_validity(self):
        fp = compute_footprint(RepsConfig(ev_lifespan=3))
        assert fp.validity_bits == 2

    def test_total_grows_linearly_with_buffer(self):
        f4 = compute_footprint(RepsConfig(buffer_size=4))
        f8 = compute_footprint(RepsConfig(buffer_size=8))
        assert f8.total_bits - f4.total_bits == 4 * 17

    def test_rows_renderable(self):
        rows = compute_footprint(RepsConfig()).rows()
        assert rows[-1][1] == 193
        assert any("cachedEV" in r[0] for r in rows)

    def test_always_under_32_bytes_for_paper_configs(self):
        """The headline claim: <25B regardless of topology size (the
        footprint has no topology-dependent field at all)."""
        for evs in (16, 256, 65536):
            fp = compute_footprint(RepsConfig(evs_size=evs))
            assert fp.total_bytes <= 25
