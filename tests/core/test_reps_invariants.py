"""REPS state-machine invariants under random event interleavings.

Seeded random walks drive a :class:`RepsSender` through arbitrary
ack/nack/timeout/send interleavings and check, after every step, the
invariants the algorithm's correctness argument leans on:

1. ``numberOfValidEVs`` never exceeds the buffer size and always equals
   the number of valid buffer slots;
2. a sender whose freezing window has expired never hands out a
   stale (frozen-reuse) EV — past ``exit_freezing_at`` it must leave
   freezing mode on the very next send;
3. with ``ev_lifespan > 1`` no slot ever holds more than ``lifespan``
   remaining uses, and recycled sends never exceed ``lifespan`` per
   cached ACK.
"""

from __future__ import annotations

import random

import pytest

from repro.core.reps import RepsConfig, RepsSender


class Walk:
    """One seeded random interleaving of sender events."""

    def __init__(self, config: RepsConfig, seed: int) -> None:
        self.sender = RepsSender(config, rng=random.Random(seed))
        self.driver = random.Random(seed + 99991)
        self.now = 0
        self.in_flight = []
        self.acks_cached = 0

    def step(self) -> None:
        self.now += self.driver.randrange(1, 60_000_000)
        roll = self.driver.random()
        if roll < 0.5 or not self.in_flight:
            ev = self.sender.next_entropy(self.now)
            assert 0 <= ev < self.sender.config.evs_size
            self.in_flight.append(ev)
        elif roll < 0.8:
            ev = self.in_flight.pop(
                self.driver.randrange(len(self.in_flight)))
            ecn = self.driver.random() < 0.3
            if not ecn:
                self.acks_cached += 1
            self.sender.on_ack(ev, ecn=ecn, now=self.now)
        elif roll < 0.9:
            ev = self.in_flight.pop(
                self.driver.randrange(len(self.in_flight)))
            self.sender.on_nack(ev, now=self.now)
        else:
            ev = self.in_flight.pop(
                self.driver.randrange(len(self.in_flight)))
            self.sender.on_timeout(ev, now=self.now)


CONFIGS = [
    RepsConfig(buffer_size=1, evs_size=16),
    RepsConfig(buffer_size=2, evs_size=64, ev_lifespan=2),
    RepsConfig(buffer_size=8, evs_size=256),
    RepsConfig(buffer_size=8, evs_size=256, ev_lifespan=4),
    RepsConfig(buffer_size=8, evs_size=65536, freezing_enabled=False),
    RepsConfig(buffer_size=4, evs_size=128, freezing_timeout_ps=1),
]


@pytest.mark.parametrize("config", CONFIGS,
                         ids=lambda c: f"buf{c.buffer_size}"
                                       f"_life{c.ev_lifespan}"
                                       f"_frz{int(c.freezing_enabled)}")
@pytest.mark.parametrize("seed", range(5))
def test_valid_count_bounded_and_consistent(config, seed):
    walk = Walk(config, seed)
    for _ in range(600):
        walk.step()
        sender = walk.sender
        assert 0 <= sender.valid_evs <= config.buffer_size
        valid_slots = sum(uses > 0 for _, uses in sender.buffer_snapshot)
        assert sender.valid_evs == valid_slots


@pytest.mark.parametrize("seed", range(8))
def test_expired_freezing_never_hands_out_stale_evs(seed):
    config = RepsConfig(buffer_size=4, evs_size=64,
                        freezing_timeout_ps=10_000_000)
    walk = Walk(config, seed)
    for _ in range(800):
        expired = (walk.sender.freezing and
                   walk.now + 1 > walk.sender._exit_freezing_at)
        stale_before = walk.sender.stats_frozen_reuse
        walk.step()
        if expired:
            # past exit_freezing_at the next send must not reuse a
            # stale EV, and a send/ack must have thawed the sender
            assert walk.sender.stats_frozen_reuse == stale_before


@pytest.mark.parametrize("seed", range(8))
def test_forced_freeze_ignores_timeout(seed):
    """force_freeze(permanent=True) (Fig. 19) never thaws on its own."""
    config = RepsConfig(buffer_size=4, evs_size=64,
                        freezing_timeout_ps=1)
    walk = Walk(config, seed)
    walk.sender.force_freeze(walk.now, permanent=True)
    for _ in range(300):
        walk.step()
        assert walk.sender.freezing


@pytest.mark.parametrize("lifespan", [1, 2, 4])
@pytest.mark.parametrize("seed", range(5))
def test_lifespan_bounds_recycling(lifespan, seed):
    config = RepsConfig(buffer_size=8, evs_size=256,
                        ev_lifespan=lifespan)
    walk = Walk(config, seed)
    for _ in range(600):
        walk.step()
        sender = walk.sender
        # no slot ever holds more than `lifespan` remaining uses
        assert all(0 <= uses <= lifespan
                   for _, uses in sender.buffer_snapshot)
        # every recycled send consumed one of the (acks * lifespan)
        # uses ever granted — an EV is never extended past its lifespan
        assert sender.stats_recycled <= walk.acks_cached * lifespan


@pytest.mark.parametrize("seed", range(5))
def test_every_ev_send_is_accounted(seed):
    """Sends partition exactly into explored/recycled/frozen-stale."""
    config = RepsConfig(buffer_size=8, evs_size=256)
    walk = Walk(config, seed)
    sends = 0
    for _ in range(600):
        before = (walk.sender.stats_explored +
                  walk.sender.stats_recycled +
                  walk.sender.stats_frozen_reuse)
        n_flight = len(walk.in_flight)
        walk.step()
        if len(walk.in_flight) > n_flight:
            sends += 1
            after = (walk.sender.stats_explored +
                     walk.sender.stats_recycled +
                     walk.sender.stats_frozen_reuse)
            assert after == before + 1
    assert sends > 0
