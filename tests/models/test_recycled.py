"""Recycled balls-into-bins (the REPS model, Theorem 5.1)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.balls_bins import batched_balls_into_bins
from repro.models.recycled import (
    RecycledParams,
    recycled_balls_into_bins,
    theorem_bounds,
)


class TestMechanics:
    def test_defaults_from_theorem(self):
        p = RecycledParams(n_bins=16).resolved()
        assert p.tau >= 4
        assert p.b >= 2.0

    def test_rejects_zero_bins(self):
        with pytest.raises(ValueError):
            recycled_balls_into_bins(RecycledParams(n_bins=0), 10)

    def test_deterministic_under_seed(self):
        p = RecycledParams(n_bins=8, tau=6, b=4)
        a = recycled_balls_into_bins(p, 200, rng=random.Random(3))
        b = recycled_balls_into_bins(p, 200, rng=random.Random(3))
        assert a.max_load == b.max_load

    @given(n=st.integers(2, 16), rounds=st.integers(1, 100))
    @settings(max_examples=30, deadline=None)
    def test_property_ball_conservation(self, n, rounds):
        t = recycled_balls_into_bins(RecycledParams(n_bins=n), rounds,
                                     rng=random.Random(0))
        # once every bin is nonempty, total balls stay constant at
        # round-granularity; totals never go negative either way
        assert all(b >= 0 for b in t.total_balls)
        assert all(m <= b for m, b in zip(t.max_load, t.total_balls))

    def test_remembered_fraction_monotone_rises(self):
        t = recycled_balls_into_bins(
            RecycledParams(n_bins=8, tau=8, b=4), 300,
            rng=random.Random(1))
        assert t.remembered_fraction[-1] > t.remembered_fraction[0]


class TestConvergence:
    def test_converges_below_tau_where_ops_diverges(self):
        """Fig. 18 (n=5): OPS grows unboundedly; recycling settles at or
        below tau (convergence is O(n log n) rounds with real constants,
        so we run a comfortably long horizon)."""
        n, tau = 5, 8
        rounds = 1000
        ops = batched_balls_into_bins(n, rounds, lam=1.0,
                                      rng=random.Random(7))
        rec = recycled_balls_into_bins(
            RecycledParams(n_bins=n, tau=tau, b=4), rounds,
            rng=random.Random(7))
        tail = rec.max_load[-50:]
        assert max(tail) <= tau + 1
        assert ops.final_max_load > max(tail)
        assert rec.remembered_fraction[-1] == 1.0

    def test_larger_n_bounded_by_log(self):
        """Theorem 5.1 promises O(log n) queues *throughout*, not <= tau
        at every instant: check the logarithmic bound and the gap to OPS."""
        import math
        n, rounds = 32, 3000
        t = recycled_balls_into_bins(RecycledParams(n_bins=n), rounds,
                                     rng=random.Random(8))
        ops = batched_balls_into_bins(n, rounds, lam=1.0,
                                      rng=random.Random(8))
        assert max(t.max_load) <= 8 * math.log(n)
        assert max(t.max_load[-100:]) < max(ops.max_load[-100:]) / 2

    def test_coalescing_degrades_gracefully(self):
        """Fig. 20: 2:1/4:1 recycling barely exceeds tau, 8:1 is worse
        but still bounded below plain OPS."""
        n, tau = 8, 10
        finals = {}
        for k in (1, 2, 4, 8):
            t = recycled_balls_into_bins(
                RecycledParams(n_bins=n, tau=tau, b=6, coalesce=k),
                1200, rng=random.Random(9))
            finals[k] = sum(t.max_load[-200:]) / 200
        ops = batched_balls_into_bins(n, 1200, lam=1.0,
                                      rng=random.Random(9))
        ops_final = sum(ops.max_load[-200:]) / 200
        assert finals[1] <= finals[8] + tau
        assert finals[8] < ops_final

    def test_theorem_bounds_shape(self):
        b = theorem_bounds(64)
        assert b["tau_min"] == pytest.approx(4 * 4.1589, rel=1e-3)
        assert b["b_min"] < b["tau_min"]
