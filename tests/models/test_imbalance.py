"""EVS load-imbalance model (Fig. 14)."""

from __future__ import annotations

import pytest

from repro.models.imbalance import imbalance_sweep, load_imbalance


class TestMechanics:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            load_imbalance(evs_size=0, n_uplinks=8)
        with pytest.raises(ValueError):
            load_imbalance(evs_size=8, n_uplinks=0)

    def test_deterministic_under_seed(self):
        a = load_imbalance(evs_size=256, n_uplinks=8, repeats=5, seed=3)
        b = load_imbalance(evs_size=256, n_uplinks=8, repeats=5, seed=3)
        assert a.samples == b.samples

    def test_imbalance_nonnegative(self):
        st = load_imbalance(evs_size=64, n_uplinks=32, repeats=10, seed=1)
        assert all(s >= -1e-9 for s in st.samples)

    def test_percentiles_ordered(self):
        st = load_imbalance(evs_size=128, n_uplinks=32, repeats=40, seed=2)
        assert st.p2_5 <= st.average <= st.p97_5


class TestPaperClaims:
    def test_imbalance_decreases_with_evs(self):
        """Fig. 14a: 2^5 EVs ~2.9 imbalance, 2^16 ~0.05."""
        small = load_imbalance(evs_size=32, n_uplinks=32,
                               repeats=30, seed=4)
        large = load_imbalance(evs_size=65536, n_uplinks=32,
                               repeats=10, seed=4)
        assert small.average > 1.0
        assert large.average < 0.1
        assert small.average > 10 * large.average

    def test_more_flows_reduce_imbalance(self):
        """Fig. 14b: 32 flows see far lower imbalance than 1."""
        one = load_imbalance(evs_size=256, n_uplinks=32,
                             n_flows=1, repeats=20, seed=5)
        many = load_imbalance(evs_size=256, n_uplinks=32,
                              n_flows=32, repeats=5, seed=5)
        assert many.average < one.average

    def test_paper_thresholds(self):
        """<2^8 EVs -> >10% imbalance with 32 flows; 2^16 -> <2%."""
        small = load_imbalance(evs_size=128, n_uplinks=32, n_flows=32,
                               repeats=5, seed=6)
        assert small.average > 0.10
        # the 2^16 claim is covered (cheaply) by the 1-flow variant above

    def test_sweep_is_monotone_overall(self):
        stats = imbalance_sweep(evs_exponents=(5, 8, 11, 14),
                                n_uplinks=32, repeats=10, seed=7)
        avgs = [s.average for s in stats]
        assert avgs[0] > avgs[-1]
        assert all(a >= 0 for a in avgs)
