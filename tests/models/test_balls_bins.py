"""Batched balls-into-bins (the OPS model, Sec. 5.1)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.balls_bins import (
    average_max_load_curve,
    batched_balls_into_bins,
)


class TestMechanics:
    def test_zero_rounds(self):
        t = batched_balls_into_bins(4, 0)
        assert t.max_load == []
        assert t.final_max_load == 0

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            batched_balls_into_bins(0, 10)
        with pytest.raises(ValueError):
            batched_balls_into_bins(4, -1)
        with pytest.raises(ValueError):
            batched_balls_into_bins(4, 1, initial_loads=[1, 2])

    @given(n=st.integers(1, 32), rounds=st.integers(1, 50),
           lam=st.floats(0.1, 1.0))
    @settings(max_examples=50, deadline=None)
    def test_property_ball_conservation(self, n, rounds, lam):
        """balls(t+1) = balls(t) - served + arrived, never negative."""
        t = batched_balls_into_bins(n, rounds, lam=lam,
                                    rng=random.Random(0))
        assert all(b >= 0 for b in t.total_balls)
        assert all(m >= 0 for m in t.max_load)
        # max load can never exceed total balls
        assert all(m <= b for m, b in zip(t.max_load, t.total_balls))

    def test_deterministic_under_seed(self):
        a = batched_balls_into_bins(8, 100, rng=random.Random(5))
        b = batched_balls_into_bins(8, 100, rng=random.Random(5))
        assert a.max_load == b.max_load

    def test_initial_loads_respected(self):
        t = batched_balls_into_bins(3, 1, lam=0.0,
                                    initial_loads=[5, 0, 0],
                                    rng=random.Random(0))
        # one served from the non-empty bin, nothing arrives (lam=0)
        assert t.total_balls[0] == 4


class TestPaperClaims:
    def test_low_rate_is_stable(self):
        """At lam << 1 queues stay short."""
        t = batched_balls_into_bins(32, 2000, lam=0.5,
                                    rng=random.Random(1))
        assert t.averaged_max_load(500) < 10

    def test_full_rate_queues_grow(self):
        """Fig. 18's divergence: at lam = 1 the max queue keeps rising."""
        t = batched_balls_into_bins(32, 4000, lam=1.0,
                                    rng=random.Random(2))
        early = sum(t.max_load[200:400]) / 200
        late = sum(t.max_load[-200:]) / 200
        assert late > early * 1.5

    def test_more_ports_grow_faster(self):
        """Fig. 17: larger switches suffer more under OPS."""
        small = average_max_load_curve(8, 600, lam=0.99, repeats=3)
        large = average_max_load_curve(64, 600, lam=0.99, repeats=3)
        assert large[-1] > small[-1]
