"""Shared test helpers importable from any test module.

Kept out of ``conftest.py`` so call sites can use a plain ``from helpers
import small_network`` — relative imports of conftest break under
pytest's rootdir-based collection (no ``__init__.py`` packages here).
"""

from __future__ import annotations

import random

from repro.sim.engine import Engine
from repro.sim.link import Cable
from repro.sim.network import Network, NetworkConfig
from repro.sim.packet import Packet
from repro.sim.port import EgressPort
from repro.sim.switch import Switch
from repro.sim.topology import TopologyParams
from repro.sim.units import NS


def small_network(lb: str = "reps", *, n_hosts: int = 8,
                  hosts_per_t0: int = 4, seed: int = 1,
                  **cfg_kwargs) -> Network:
    """An 8-host, 2-ToR network — big enough for multipath, fast to run."""
    topo_kwargs = {}
    for key in ("tiers", "oversubscription", "trim_enabled", "mtu_bytes",
                "link_gbps", "host_link_gbps", "switch_mode",
                "t0s_per_pod", "t2s_per_t1", "queue_capacity_bytes"):
        if key in cfg_kwargs:
            topo_kwargs[key] = cfg_kwargs.pop(key)
    topo = TopologyParams(n_hosts=n_hosts, hosts_per_t0=hosts_per_t0,
                          **topo_kwargs)
    return Network(NetworkConfig(topo=topo, lb=lb, seed=seed, **cfg_kwargs))


def make_switch(engine: Engine, n_up: int = 8, mode: str = "ecmp",
                seed: int = 7):
    """A standalone switch with ``n_up`` cabled uplinks for routing tests."""
    sw = Switch("t0", 0, salt=12345, rng=random.Random(seed), mode=mode)
    ports = []
    for i in range(n_up):
        p = EgressPort(engine, f"up{i}", rate_gbps=400,
                       latency_ps=500 * NS, capacity_bytes=1 << 20,
                       kmin_bytes=1 << 18, kmax_bytes=1 << 19,
                       rng=random.Random(seed + i))
        cable = Cable(f"c{i}")
        rev = EgressPort(engine, f"rev{i}", rate_gbps=400,
                         latency_ps=500 * NS, capacity_bytes=1 << 20,
                         kmin_bytes=1, kmax_bytes=2,
                         rng=random.Random(seed))
        cable.attach(p, rev)
        ports.append(p)
    sw.up_ports = ports
    return sw, ports


def pkt(src: int = 0, dst: int = 100, ev: int = 0) -> Packet:
    return Packet(src=src, dst=dst, flow_id=0, seq=0, size=4096, ev=ev)


# ----------------------------------------------------------------------
# campaign/report stubs: tiny figures over the footprint model
# ----------------------------------------------------------------------
def footprint_task(buffer_size: int, seed: int = 1):
    from repro.harness.sweep import make_model_task
    return make_model_task("footprint", seed=seed,
                           buffer_size=buffer_size, evs_size=65536)


def stub_spec(fig_id: str, buffers=(1, 8), check=None, build=None):
    """A tiny, fast FigureSpec over the footprint model."""
    from repro.scenarios import FigureSpec

    def default_build():
        return {b: footprint_task(b) for b in buffers}
    return FigureSpec(
        fig_id=fig_id, figure="Stub", title=f"stub {fig_id}",
        build=build or default_build, metric="total_bits",
        check=check, tags=("stub",))


def stub_registry():
    """Three healthy figures; the middle one shares a task with the
    first (cross-figure dedup), the last declares no check (warn)."""
    def check_ok(result):
        keys = sorted(result.keys())
        assert result.value(keys[-1]) > result.value(keys[0])
    return [
        stub_spec("stub_a", buffers=(1, 8), check=check_ok),
        stub_spec("stub_b", buffers=(8, 16), check=check_ok),
        stub_spec("stub_c", buffers=(2,)),  # no check -> warn
    ]
