"""Event engine and timer semantics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine, Timer


class TestScheduling:
    def test_events_fire_in_time_order(self, engine):
        order = []
        engine.at(30, order.append, "c")
        engine.at(10, order.append, "a")
        engine.at(20, order.append, "b")
        engine.run()
        assert order == ["a", "b", "c"]

    def test_same_time_fifo(self, engine):
        order = []
        for tag in "abc":
            engine.at(5, order.append, tag)
        engine.run()
        assert order == ["a", "b", "c"]

    def test_now_advances_to_event_time(self, engine):
        seen = []
        engine.at(42, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [42]
        assert engine.now == 42

    def test_after_is_relative(self, engine):
        seen = []
        engine.at(10, lambda: engine.after(5, lambda: seen.append(engine.now)))
        engine.run()
        assert seen == [15]

    def test_cannot_schedule_in_past(self, engine):
        engine.at(10, lambda: None)
        engine.run()
        with pytest.raises(ValueError):
            engine.at(5, lambda: None)

    def test_run_until_stops_clock_at_bound(self, engine):
        engine.at(100, lambda: None)
        engine.run(until_ps=50)
        assert engine.now == 50
        assert engine.pending() == 1

    def test_run_until_never_rewinds_clock(self, engine):
        """Regression: a second run() with an *earlier* horizon used to
        set ``now = until_ps`` and move time backwards, after which a
        callback could legally schedule into the already-executed
        past."""
        engine.at(100, lambda: None)
        engine.run(until_ps=50)
        engine.run(until_ps=20)  # horizon behind the clock: a no-op
        assert engine.now == 50
        # the past is still the past: scheduling before `now` raises
        with pytest.raises(ValueError):
            engine.at(30, lambda: None)
        engine.run(until_ps=60)
        assert engine.now == 60
        assert engine.pending() == 1

    def test_stop_breaks_loop(self, engine):
        fired = []

        def first():
            fired.append(1)
            engine.stop()

        engine.at(1, first)
        engine.at(2, fired.append, 2)
        engine.run()
        assert fired == [1]
        assert engine.pending() == 1

    def test_max_events_bound(self, engine):
        for i in range(10):
            engine.at(i + 1, lambda: None)
        assert engine.run(max_events=3) == 3
        assert engine.pending() == 7

    def test_events_executed_accumulates(self, engine):
        engine.at(1, lambda: None)
        engine.at(2, lambda: None)
        engine.run()
        assert engine.events_executed == 2

    def test_nested_scheduling_during_run(self, engine):
        seen = []

        def chain(depth):
            seen.append(depth)
            if depth < 5:
                engine.after(1, chain, depth + 1)

        engine.at(0, chain, 0)
        engine.run()
        assert seen == [0, 1, 2, 3, 4, 5]

    @given(delays=st.lists(st.integers(0, 10**9), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_property_monotone_execution(self, delays):
        eng = Engine()
        fired = []
        for d in delays:
            eng.at(d, lambda d=d: fired.append(eng.now))
        eng.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)


class TestTimer:
    def test_fires_once(self, engine):
        hits = []
        t = Timer(engine, lambda: hits.append(engine.now))
        t.arm_at(10)
        engine.run()
        assert hits == [10]
        assert not t.armed

    def test_cancel_suppresses(self, engine):
        hits = []
        t = Timer(engine, lambda: hits.append(1))
        t.arm_at(10)
        t.cancel()
        engine.run()
        assert hits == []

    def test_rearm_replaces_deadline(self, engine):
        hits = []
        t = Timer(engine, lambda: hits.append(engine.now))
        t.arm_at(10)
        t.arm_at(20)
        engine.run()
        assert hits == [20]

    def test_rearm_from_callback(self, engine):
        hits = []

        def fire():
            hits.append(engine.now)
            if len(hits) < 3:
                t.arm_after(5)

        t = Timer(engine, fire)
        t.arm_at(5)
        engine.run()
        assert hits == [5, 10, 15]

    def test_deadline_visible(self, engine):
        t = Timer(engine, lambda: None)
        t.arm_at(33)
        assert t.deadline == 33
        assert t.armed

    def test_deferred_rearm_fires_once_at_final_deadline(self, engine):
        """Re-arming later keeps the queued shell; it must defer silently
        at the old deadline and fire exactly once at the new one."""
        hits = []
        t = Timer(engine, lambda: hits.append(engine.now))
        t.arm_at(10)
        t.arm_at(30)  # shell at 10 stays queued, defers itself
        engine.at(10, lambda: hits.append(("mid", engine.now, t.armed)))
        engine.run()
        assert hits == [("mid", 10, True), 30]

    def test_cancel_then_rearm_revives_shell(self, engine):
        hits = []
        t = Timer(engine, lambda: hits.append(engine.now))
        t.arm_at(10)
        t.cancel()
        t.arm_at(10)  # revives the cancelled shell in place
        engine.run()
        assert hits == [10]


class TestWheelGeometry:
    """The slotted wheel's horizon, overflow heap, and window jumps."""

    def test_far_future_event_beyond_horizon(self, engine):
        # the wheel window is ~134 us; 1 s lands in the overflow heap
        seen = []
        engine.at(10**12, lambda: seen.append(engine.now))
        assert engine.pending() == 1
        engine.run()
        assert seen == [10**12]

    def test_order_preserved_across_horizon(self, engine):
        order = []
        engine.at(10**12, order.append, "far")
        engine.at(5, order.append, "near")
        engine.at(10**12, order.append, "far2")
        engine.run()
        assert order == ["near", "far", "far2"]

    def test_window_jumps_over_idle_gaps(self, engine):
        # sparse events many windows apart: each drains after a jump
        times = [0, 10**9, 7 * 10**9, 10**12]
        seen = []
        for t in times:
            engine.at(t, lambda: seen.append(engine.now))
        engine.run()
        assert seen == times

    def test_until_across_window_boundary(self, engine):
        engine.at(10**9, lambda: None)
        engine.run(until_ps=5 * 10**8)
        assert engine.now == 5 * 10**8
        assert engine.pending() == 1
        engine.run()
        assert engine.now == 10**9
        assert engine.pending() == 0

    def test_callback_schedules_far_then_near(self, engine):
        seen = []

        def first():
            engine.at(engine.now + 10**10, lambda: seen.append("far"))
            engine.at(engine.now + 1, lambda: seen.append("near"))

        engine.at(0, first)
        engine.run()
        assert seen == ["near", "far"]


class TestPendingAccounting:
    """Regression: ``pending()`` counted cancelled Timer shells, so
    queue-depth probes over-read under RTO-heavy runs.  ``pending()``
    stays the physical queue depth; ``pending_live()`` excludes stale
    shells."""

    def test_cancelled_shell_counted_physical_not_live(self, engine):
        t = Timer(engine, lambda: None)
        t.arm_at(10)
        t.cancel()
        assert engine.pending() == 1      # the shell is still queued
        assert engine.pending_live() == 0  # but represents nothing
        engine.run()
        assert engine.pending() == 0
        assert engine.pending_live() == 0

    def test_rearm_later_keeps_single_shell(self, engine):
        t = Timer(engine, lambda: None)
        t.arm_at(10)
        for deadline in (20, 30, 40, 50):
            t.arm_at(deadline)  # deferred, not re-pushed
        assert engine.pending() == 1
        assert engine.pending_live() == 1
        engine.run()
        assert engine.pending() == 0

    def test_rearm_earlier_supersedes_shell(self, engine):
        t = Timer(engine, lambda: None)
        t.arm_at(100)
        t.arm_at(50)  # earlier: must push a fresh shell
        assert engine.pending() == 2
        assert engine.pending_live() == 1
        engine.run()
        assert engine.pending() == 0
        assert engine.pending_live() == 0

    def test_cancel_rearm_storm_drains_clean(self, engine):
        timers = [Timer(engine, lambda: None) for _ in range(32)]
        for i, t in enumerate(timers):
            t.arm_at(100 + i)
            if i % 3 == 0:
                t.cancel()
            elif i % 3 == 1:
                t.arm_at(10 + i)  # earlier: supersede
            else:
                t.arm_at(1000 + i)  # later: defer
        live = sum(1 for t in timers if t.armed)
        assert engine.pending_live() == live
        assert engine.pending() >= live
        engine.run()
        assert engine.pending() == 0
        assert engine.pending_live() == 0
