"""Event engine and timer semantics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine, Timer


class TestScheduling:
    def test_events_fire_in_time_order(self, engine):
        order = []
        engine.at(30, order.append, "c")
        engine.at(10, order.append, "a")
        engine.at(20, order.append, "b")
        engine.run()
        assert order == ["a", "b", "c"]

    def test_same_time_fifo(self, engine):
        order = []
        for tag in "abc":
            engine.at(5, order.append, tag)
        engine.run()
        assert order == ["a", "b", "c"]

    def test_now_advances_to_event_time(self, engine):
        seen = []
        engine.at(42, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [42]
        assert engine.now == 42

    def test_after_is_relative(self, engine):
        seen = []
        engine.at(10, lambda: engine.after(5, lambda: seen.append(engine.now)))
        engine.run()
        assert seen == [15]

    def test_cannot_schedule_in_past(self, engine):
        engine.at(10, lambda: None)
        engine.run()
        with pytest.raises(ValueError):
            engine.at(5, lambda: None)

    def test_run_until_stops_clock_at_bound(self, engine):
        engine.at(100, lambda: None)
        engine.run(until_ps=50)
        assert engine.now == 50
        assert engine.pending() == 1

    def test_run_until_never_rewinds_clock(self, engine):
        """Regression: a second run() with an *earlier* horizon used to
        set ``now = until_ps`` and move time backwards, after which a
        callback could legally schedule into the already-executed
        past."""
        engine.at(100, lambda: None)
        engine.run(until_ps=50)
        engine.run(until_ps=20)  # horizon behind the clock: a no-op
        assert engine.now == 50
        # the past is still the past: scheduling before `now` raises
        with pytest.raises(ValueError):
            engine.at(30, lambda: None)
        engine.run(until_ps=60)
        assert engine.now == 60
        assert engine.pending() == 1

    def test_stop_breaks_loop(self, engine):
        fired = []

        def first():
            fired.append(1)
            engine.stop()

        engine.at(1, first)
        engine.at(2, fired.append, 2)
        engine.run()
        assert fired == [1]
        assert engine.pending() == 1

    def test_max_events_bound(self, engine):
        for i in range(10):
            engine.at(i + 1, lambda: None)
        assert engine.run(max_events=3) == 3
        assert engine.pending() == 7

    def test_events_executed_accumulates(self, engine):
        engine.at(1, lambda: None)
        engine.at(2, lambda: None)
        engine.run()
        assert engine.events_executed == 2

    def test_nested_scheduling_during_run(self, engine):
        seen = []

        def chain(depth):
            seen.append(depth)
            if depth < 5:
                engine.after(1, chain, depth + 1)

        engine.at(0, chain, 0)
        engine.run()
        assert seen == [0, 1, 2, 3, 4, 5]

    @given(delays=st.lists(st.integers(0, 10**9), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_property_monotone_execution(self, delays):
        eng = Engine()
        fired = []
        for d in delays:
            eng.at(d, lambda d=d: fired.append(eng.now))
        eng.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)


class TestTimer:
    def test_fires_once(self, engine):
        hits = []
        t = Timer(engine, lambda: hits.append(engine.now))
        t.arm_at(10)
        engine.run()
        assert hits == [10]
        assert not t.armed

    def test_cancel_suppresses(self, engine):
        hits = []
        t = Timer(engine, lambda: hits.append(1))
        t.arm_at(10)
        t.cancel()
        engine.run()
        assert hits == []

    def test_rearm_replaces_deadline(self, engine):
        hits = []
        t = Timer(engine, lambda: hits.append(engine.now))
        t.arm_at(10)
        t.arm_at(20)
        engine.run()
        assert hits == [20]

    def test_rearm_from_callback(self, engine):
        hits = []

        def fire():
            hits.append(engine.now)
            if len(hits) < 3:
                t.arm_after(5)

        t = Timer(engine, fire)
        t.arm_at(5)
        engine.run()
        assert hits == [5, 10, 15]

    def test_deadline_visible(self, engine):
        t = Timer(engine, lambda: None)
        t.arm_at(33)
        assert t.deadline == 33
        assert t.armed
