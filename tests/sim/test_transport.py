"""Transport: delivery, retransmission, coalescing, trimming recovery."""

from __future__ import annotations

import pytest

from repro.sim.network import Network, NetworkConfig
from repro.sim.topology import TopologyParams

from helpers import small_network


def one_flow(net: Network, size=256 * 1024, src=0, dst=4, **kw) -> int:
    return net.add_flow(src, dst, size, **kw)


class TestBasicDelivery:
    def test_single_flow_completes(self, net):
        fid = one_flow(net)
        m = net.run()
        assert m.flows_completed == 1
        sender = net.sender_of(fid)
        assert sender.done
        assert net.flows[fid].receiver.complete

    def test_all_bytes_arrive_exactly_once(self, net):
        fid = one_flow(net, size=1_000_000)
        net.run()
        rec = net.flows[fid].receiver
        assert rec.bytes_received == 1_000_000

    def test_sub_mtu_message(self, net):
        fid = one_flow(net, size=100)
        m = net.run()
        assert m.flows_completed == 1
        assert net.sender_of(fid).n_pkts == 1

    def test_non_multiple_of_mtu(self, net):
        fid = one_flow(net, size=4096 * 3 + 17)
        net.run()
        rec = net.flows[fid].receiver
        assert rec.bytes_received == 4096 * 3 + 17

    def test_same_tor_flow(self, net):
        fid = one_flow(net, src=0, dst=1)  # both under t0_0
        m = net.run()
        assert m.flows_completed == 1
        # same-ToR traffic never touches the uplinks
        up_bytes = sum(p.stats.bytes_tx
                       for p in net.tree.t0s[0].up_ports)
        assert up_bytes == 0

    def test_fct_close_to_ideal(self, net):
        """An uncontended 1 MiB flow finishes near serialization + RTT."""
        fid = one_flow(net, size=1 << 20)
        net.run()
        fct_us = net.sender_of(fid).fct_ps() / 1e6
        ideal_us = (1 << 20) / 50_000 + net.tree.rtt_ps() / 1e6
        assert fct_us == pytest.approx(ideal_us, rel=0.15)

    def test_flow_rejects_bad_hosts(self, net):
        with pytest.raises(ValueError):
            net.add_flow(0, 0, 100)
        with pytest.raises(ValueError):
            net.add_flow(0, 99, 100)
        with pytest.raises(ValueError):
            net.add_flow(0, 1, 0)

    def test_start_time_respected(self, net):
        fid = one_flow(net, start_us=50.0)
        net.run()
        assert net.sender_of(fid).start_time == 50_000_000


class TestManyFlows:
    def test_bidirectional_pairs(self, net):
        one_flow(net, src=0, dst=4)
        one_flow(net, src=4, dst=0)
        m = net.run()
        assert m.flows_completed == 2

    def test_fan_in_all_complete(self):
        net = small_network(n_hosts=16, hosts_per_t0=8)
        for src in range(8, 16):
            net.add_flow(src, 0, 128 * 1024)
        m = net.run(max_us=20_000)
        assert m.flows_completed == 8

    def test_metrics_by_tag(self, net):
        one_flow(net, tag="a")
        one_flow(net, src=1, dst=5, tag="b")
        net.run()
        assert net.metrics(tag="a").flows_total == 1
        assert net.metrics(tag="b").flows_total == 1
        assert net.metrics().flows_total == 2


class TestRetransmission:
    def test_flow_survives_transient_blackhole(self):
        """All uplinks die briefly; RTO retransmissions finish the flow."""
        net = small_network(n_hosts=16, hosts_per_t0=8, lb="ops")
        for c in net.tree.t0_uplink_cables():
            net.failures.fail_cable(c, at_ps=0, duration_ps=200_000_000)
        fid = net.add_flow(0, 8, 64 * 1024)
        m = net.run(max_us=100_000)
        assert m.flows_completed == 1
        assert net.sender_of(fid).stats.retransmissions > 0

    def test_lost_packets_counted_as_timeouts(self):
        net = small_network(n_hosts=16, hosts_per_t0=8, lb="ops")
        for c in net.tree.t0_uplink_cables():
            net.failures.fail_cable(c, at_ps=0, duration_ps=150_000_000)
        fid = net.add_flow(0, 8, 32 * 1024)
        net.run(max_us=100_000)
        assert net.sender_of(fid).stats.timeouts > 0

    def test_duplicate_acks_harmless(self, net):
        """Retransmit + late original delivery => duplicate ACKs must not
        corrupt completion accounting."""
        fid = one_flow(net, size=512 * 1024)
        m = net.run()
        s = net.sender_of(fid)
        assert m.flows_completed == 1
        assert len(s._acked) == s.n_pkts  # noqa: SLF001

    def test_ber_lossy_path_still_completes(self):
        net = small_network(n_hosts=16, hosts_per_t0=8, lb="reps", seed=3)
        for c in net.tree.t0_uplink_cables():
            net.failures.set_ber(c, 0.05)
        net.add_flow(0, 8, 256 * 1024)
        m = net.run(max_us=200_000)
        assert m.flows_completed == 1


class TestAckCoalescing:
    @pytest.mark.parametrize("ratio", [1, 2, 4, 8, 16])
    def test_flow_completes_at_any_ratio(self, ratio):
        net = small_network(ack_coalesce=ratio)
        fid = net.add_flow(0, 4, 512 * 1024)
        m = net.run(max_us=20_000)
        assert m.flows_completed == 1

    def test_coalescing_reduces_ack_count(self):
        counts = {}
        for ratio in (1, 4):
            net = small_network(ack_coalesce=ratio)
            fid = net.add_flow(0, 4, 512 * 1024)
            net.run(max_us=20_000)
            counts[ratio] = net.sender_of(fid).stats.acks_received
        assert counts[4] < counts[1]
        assert counts[4] >= counts[1] // 4

    def test_carry_evs_reports_every_packet(self):
        net = small_network(ack_coalesce=4, carry_evs=True)
        seen = []
        fid = net.add_flow(0, 4, 256 * 1024)
        lb = net.flows[fid].sender.lb
        original = lb.on_ack

        def spy(ev, ecn, now):
            seen.append(ev)
            original(ev, ecn, now)

        lb.on_ack = spy
        net.run(max_us=20_000)
        assert len(seen) == net.sender_of(fid).n_pkts

    def test_delayed_ack_timer_prevents_stall(self):
        """A message whose tail doesn't fill the coalescing window must
        still be acknowledged (via the delayed-ACK flush)."""
        net = small_network(ack_coalesce=16)
        net.add_flow(0, 4, 4096 * 3)  # 3 packets < 16
        m = net.run(max_us=20_000)
        assert m.flows_completed == 1


class TestTrimming:
    def _incast_net(self, trim: bool) -> Network:
        net = small_network(n_hosts=16, hosts_per_t0=8, lb="ops",
                            trim_enabled=trim,
                            queue_capacity_bytes=64 * 1024)
        for src in range(8, 16):
            net.add_flow(src, 0, 256 * 1024)
        return net

    def test_trim_converts_drops_to_nacks(self):
        with_trim = self._incast_net(trim=True)
        m = with_trim.run(max_us=100_000)
        assert m.flows_completed == 8
        assert m.trims > 0
        assert m.drops_overflow == 0

    def test_without_trim_overflow_drops(self):
        without = self._incast_net(trim=False)
        m = without.run(max_us=100_000)
        assert m.flows_completed == 8
        assert m.drops_overflow > 0
        assert m.trims == 0

    def test_nack_recovery_faster_than_rto(self):
        """Trimming recovers losses well before the 70 us RTO."""
        with_trim = self._incast_net(trim=True)
        m1 = with_trim.run(max_us=100_000)
        without = self._incast_net(trim=False)
        m2 = without.run(max_us=100_000)
        assert m1.makespan_us < m2.makespan_us

    def test_nacks_counted_on_sender(self):
        net = self._incast_net(trim=True)
        m = net.run(max_us=100_000)
        nacks = sum(r.sender.stats.nacks for r in net.flows.values())
        assert nacks == m.trims
