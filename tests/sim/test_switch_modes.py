"""WCMP and source-routing switch modes (Secs. 3.3 and 4.3.2)."""

from __future__ import annotations

import random
from collections import Counter

from repro.sim.engine import Engine
from repro.sim.network import Network, NetworkConfig
from repro.sim.topology import TopologyParams

from helpers import make_switch, pkt


class TestSourceMode:
    def test_ev_is_path_id(self, engine):
        sw, ports = make_switch(engine, mode="source", n_up=8)
        for ev in range(32):
            assert sw.route(pkt(ev=ev)) is ports[ev % 8]

    def test_reps_source_network_runs(self):
        """REPS over source routing: EVs are path ids, no hashing."""
        topo = TopologyParams(n_hosts=8, hosts_per_t0=4)
        net = Network(NetworkConfig(topo=topo, lb="reps_source", seed=3,
                                    evs_size=64))
        assert all(sw.mode == "source"
                   for sw in net.tree.all_switches())
        for src in range(4):
            net.add_flow(src, 4 + src, 1 << 20)
        m = net.run(max_us=200_000)
        assert m.flows_completed == 4

    def test_reps_source_avoids_failed_path(self):
        topo = TopologyParams(n_hosts=8, hosts_per_t0=4)
        net = Network(NetworkConfig(topo=topo, lb="reps_source", seed=3,
                                    evs_size=64))
        net.failures.fail_cable(net.tree.t0_uplink_cables()[0],
                                at_ps=30_000_000, duration_ps=300_000_000)
        for src in range(4):
            net.add_flow(src, 4 + src, 2 << 20)
        m = net.run(max_us=2_000_000)
        assert m.flows_completed == 4

        # an OPS run over the same source-routed fabric drops more
        net2 = Network(NetworkConfig(topo=topo, lb="ops", seed=3,
                                     evs_size=64))
        for sw in net2.tree.all_switches():
            sw.mode = "source"
        net2.failures.fail_cable(net2.tree.t0_uplink_cables()[0],
                                 at_ps=30_000_000,
                                 duration_ps=300_000_000)
        for src in range(4):
            net2.add_flow(src, 4 + src, 2 << 20)
        m2 = net2.run(max_us=2_000_000)
        assert m.total_drops <= m2.total_drops


class TestWcmpMode:
    def test_uniform_when_rates_equal(self, engine):
        sw, ports = make_switch(engine, mode="wcmp", n_up=4)
        counts = Counter(sw.route(pkt(ev=ev)).name for ev in range(4096))
        expect = 4096 / 4
        for c in counts.values():
            assert abs(c - expect) / expect < 0.2

    def test_degraded_port_draws_proportionally_less(self, engine):
        sw, ports = make_switch(engine, mode="wcmp", n_up=4)
        ports[0].rate_gbps = 200.0  # half the rate of the others
        counts = Counter(sw.route(pkt(ev=ev)).name for ev in range(7000))
        slow = counts[ports[0].name]
        fast_avg = sum(counts[p.name] for p in ports[1:]) / 3
        assert slow < 0.75 * fast_avg

    def test_static_per_flow_assignment(self, engine):
        sw, ports = make_switch(engine, mode="wcmp")
        picks = {sw.route(pkt(ev=7)).name for _ in range(10)}
        assert len(picks) == 1

    def test_wcmp_skews_bytes_off_degraded_uplink(self):
        """WCMP's weighted groups absorb a *known* asymmetry: the slow
        uplink carries a proportionally smaller byte share than under
        plain ECMP (Sec. 4.3.2's note; the max-FCT comparison would be
        hash-luck-dominated at this flow count)."""
        topo = TopologyParams(n_hosts=16, hosts_per_t0=8)

        def slow_share(lb):
            net = Network(NetworkConfig(topo=topo, lb=lb, seed=5))
            slow_cable = net.tree.t0_uplink_cables()[0]
            net.failures.degrade_cable(slow_cable, 100.0)
            from repro.workloads import permutation
            for src, dst in permutation(16, seed=2, cross_tor_only=True,
                                        hosts_per_t0=8):
                net.add_flow(src, dst, 1 << 20)
            m = net.run(max_us=1_000_000)
            assert m.flows_completed == m.flows_total
            t0 = net.tree.t0s[0]
            total = sum(p.stats.bytes_tx for p in t0.up_ports) or 1
            return t0.up_ports[0].stats.bytes_tx / total

        # 100G among 7x400G: WCMP weight 1/29 ~ 3%; per-packet uniform
        # spraying (OPS) puts ~1/8 there.  (Plain ECMP's 8 static flows
        # are too lumpy a sample to compare shares against.)
        wcmp, ops = slow_share("wcmp"), slow_share("ops")
        assert wcmp < 0.08
        assert ops > 0.085
        assert wcmp < ops
