"""Time/bandwidth unit conversions."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.units import (
    MS,
    NS,
    US,
    gbps_to_bytes_per_us,
    ps_to_us,
    tx_time_ps,
    us_to_ps,
)


class TestTxTime:
    def test_400g_is_20ps_per_byte(self):
        assert tx_time_ps(1, 400) == 20
        assert tx_time_ps(4096, 400) == 81_920

    def test_100g_is_80ps_per_byte(self):
        assert tx_time_ps(8192, 100) == 655_360

    def test_200g_double_of_400g(self):
        assert tx_time_ps(4096, 200) == 2 * tx_time_ps(4096, 400)

    def test_rounds_up_never_zero(self):
        assert tx_time_ps(1, 1000) >= 1

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            tx_time_ps(100, 0)

    @given(size=st.integers(1, 1 << 20), gbps=st.sampled_from(
        [10, 25, 40, 100, 200, 400, 800]))
    def test_property_positive_and_monotone(self, size, gbps):
        t = tx_time_ps(size, gbps)
        assert t >= 1
        assert tx_time_ps(size + 1, gbps) >= t


class TestConversions:
    def test_constants_consistent(self):
        assert US == 1000 * NS
        assert MS == 1000 * US

    def test_us_roundtrip(self):
        assert ps_to_us(us_to_ps(12.5)) == pytest.approx(12.5)

    def test_gbps_to_bytes_per_us(self):
        # 400 Gbps = 50 bytes/ns = 50_000 bytes/us
        assert gbps_to_bytes_per_us(400) == 50_000
