"""Appendix-A loss discrimination: RTT heuristic + transport wiring."""

from __future__ import annotations

import pytest

from repro.sim.loss_discrimination import RttLossClassifier
from repro.sim.network import Network, NetworkConfig
from repro.sim.topology import TopologyParams

US = 1_000_000
BASE = 8 * US


def clf(**kw) -> RttLossClassifier:
    return RttLossClassifier(BASE, **kw)


class TestClassifier:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            RttLossClassifier(0)
        with pytest.raises(ValueError):
            RttLossClassifier(BASE, congested_factor=1.0)

    def test_low_rtt_before_timeout_is_failure(self):
        """Short queues + sudden loss = the path died (Appendix A)."""
        c = clf()
        for i in range(5):
            c.observe(now=i * US, rtt_ps=BASE + US)  # near-base RTTs
        assert c.classify_timeout(now=5 * US) == "failure"

    def test_high_rtt_before_timeout_is_congestion(self):
        c = clf()
        c.observe(now=0, rtt_ps=3 * BASE)  # deep queues observed
        assert c.classify_timeout(now=US) == "congestion"

    def test_no_samples_reads_as_failure(self):
        assert clf().classify_timeout(now=0) == "failure"

    def test_window_expires_old_samples(self):
        c = clf(window_ps=10 * US)
        c.observe(now=0, rtt_ps=5 * BASE)
        assert c.classify_timeout(now=US) == "congestion"
        assert c.classify_timeout(now=20 * US) == "failure"
        assert c.sample_count == 0

    def test_recent_max_tracks_maximum(self):
        c = clf()
        c.observe(now=0, rtt_ps=BASE)
        c.observe(now=1, rtt_ps=3 * BASE)
        c.observe(now=2, rtt_ps=2 * BASE)
        assert c.recent_max_rtt(now=3) == 3 * BASE

    def test_threshold_factor_respected(self):
        tight = clf(congested_factor=1.2)
        tight.observe(now=0, rtt_ps=int(1.3 * BASE))
        assert tight.classify_timeout(now=1) == "congestion"
        loose = clf(congested_factor=4.0)
        loose.observe(now=0, rtt_ps=int(1.3 * BASE))
        assert loose.classify_timeout(now=1) == "failure"


class TestTransportIntegration:
    def _incast_net(self, **cfg_kw) -> Network:
        """8:1 incast on the default (1-BDP) queues: the receiver's
        downlink overflows, so drops happen with RTTs inflated by a full
        queue — the congestion signature the heuristic keys on."""
        topo = TopologyParams(n_hosts=16, hosts_per_t0=8)
        net = Network(NetworkConfig(topo=topo, lb="reps", seed=3,
                                    **cfg_kw))
        for src in range(8, 16):
            net.add_flow(src, 0, 2 << 20)
        return net

    def test_congestion_timeouts_do_not_freeze(self):
        net = self._incast_net(rtt_loss_discrimination=True)
        m = net.run(max_us=500_000)
        assert m.flows_completed == 8
        freezes = sum(r.sender.lb.stats_freeze_entries
                      for r in net.flows.values())
        timeouts = sum(r.sender.stats.timeouts
                       for r in net.flows.values())
        assert timeouts > 0, "scenario must actually drop packets"
        assert freezes == 0

    def test_without_heuristic_same_drops_do_freeze(self):
        """Control: identical incast without discrimination freezes
        (harmless per Appendix A, but the contrast proves the wiring)."""
        net = self._incast_net(rtt_loss_discrimination=False)
        net.run(max_us=500_000)
        freezes = sum(r.sender.lb.stats_freeze_entries
                      for r in net.flows.values())
        assert freezes > 0

    def test_link_failure_still_freezes(self):
        """A real cable failure shows low RTTs before the loss, so the
        heuristic still reports it and REPS freezes."""
        topo = TopologyParams(n_hosts=8, hosts_per_t0=4)
        net = Network(NetworkConfig(topo=topo, lb="reps", seed=3,
                                    rtt_loss_discrimination=True))
        net.failures.fail_cable(net.tree.t0_uplink_cables()[0],
                                at_ps=30 * US, duration_ps=300 * US)
        for src in range(4):
            net.add_flow(src, 4 + src, 2 << 20)
        m = net.run(max_us=2_000_000)
        assert m.flows_completed == 4
        freezes = sum(r.sender.lb.stats_freeze_entries
                      for r in net.flows.values())
        assert freezes > 0


class TestDelaySignal:
    def test_delay_based_reps_completes_and_adapts(self):
        """Sec. 4.5.3: REPS driven by delay instead of ECN still routes
        around a degraded link."""
        topo = TopologyParams(n_hosts=8, hosts_per_t0=4)

        def run(delay_factor):
            net = Network(NetworkConfig(
                topo=topo, lb="reps", seed=3,
                delay_signal_factor=delay_factor))
            net.failures.degrade_cable(net.tree.t0_uplink_cables()[0],
                                       100.0)
            for src in range(4):
                net.add_flow(src, 4 + src, 2 << 20)
            return net.run(max_us=1_000_000)

        m = run(1.5)
        assert m.flows_completed == 4

    def test_delay_signal_behaves_like_ecn_shape(self):
        """Delay-REPS beats OPS on the same degraded fabric."""
        topo = TopologyParams(n_hosts=8, hosts_per_t0=4)

        def run(lb, factor=None):
            net = Network(NetworkConfig(
                topo=topo, lb=lb, seed=3, delay_signal_factor=factor))
            net.failures.degrade_cable(net.tree.t0_uplink_cables()[0],
                                       100.0)
            for src in range(4):
                net.add_flow(src, 4 + src, 2 << 20)
            return net.run(max_us=1_000_000)

        delay_reps = run("reps", factor=1.5)
        ops = run("ops")
        assert delay_reps.max_fct_us < ops.max_fct_us
