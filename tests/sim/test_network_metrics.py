"""Network facade and metrics aggregation."""

from __future__ import annotations

import pytest

from repro.sim.metrics import RunMetrics
from repro.sim.network import Network, NetworkConfig
from repro.sim.topology import TopologyParams

from helpers import small_network


class TestRunSemantics:
    def test_stops_when_all_flows_done(self, net):
        net.add_flow(0, 4, 64 * 1024)
        m = net.run()
        assert m.flows_completed == 1
        assert net.engine.pending() >= 0  # leftover cancelled timers ok

    def test_max_us_bounds_stuck_run(self):
        net = small_network(lb="ops")
        for c in net.tree.t0_uplink_cables():
            net.failures.fail_cable(c, at_ps=0)  # permanent blackhole
        net.add_flow(0, 4, 64 * 1024)
        m = net.run(max_us=500.0)
        assert m.flows_completed == 0
        assert m.sim_time_us <= 500.0 + 1e-6

    def test_requires_bound_when_not_stopping(self, net):
        with pytest.raises(ValueError):
            net.run(stop_on_complete=False)

    def test_dynamic_flow_addition_from_callback(self, net):
        added = []

        def chain(sender):
            if len(added) < 3:
                added.append(net.add_flow(0, 4, 32 * 1024,
                                          on_complete=chain))

        net.add_flow(0, 4, 32 * 1024, on_complete=chain)
        m = net.run(max_us=10_000)
        assert m.flows_completed == 4

    def test_switch_mode_derived_from_lb(self):
        net = small_network(lb="adaptive_roce")
        assert all(sw.mode == "adaptive" for sw in net.tree.all_switches())
        net2 = small_network(lb="ideal")
        assert all(sw.mode == "ideal" for sw in net2.tree.all_switches())
        net3 = small_network(lb="reps")
        assert all(sw.mode == "ecmp" for sw in net3.tree.all_switches())

    def test_per_flow_lb_override(self, net):
        fid = net.add_flow(0, 4, 64 * 1024, lb="ecmp")
        from repro.lb.simple import EcmpLb
        assert isinstance(net.flows[fid].sender.lb, EcmpLb)

    def test_seed_reproducibility(self):
        def fct(seed):
            net = small_network(lb="ops", seed=seed)
            fid = net.add_flow(0, 4, 512 * 1024)
            net.run(max_us=10_000)
            return net.sender_of(fid).fct_ps()

        assert fct(7) == fct(7)


class TestMetrics:
    def test_goodput_accounting(self, net):
        fid = net.add_flow(0, 4, 1 << 20)
        m = net.run()
        # one flow on an idle 400G fabric: goodput below line rate but
        # within a factor of a few (RTT overhead at this size)
        assert 50 < m.goodput_gbps[0] < 400

    def test_percentiles_ordering(self):
        net = small_network(n_hosts=16, hosts_per_t0=8)
        for src in range(8, 16):
            net.add_flow(src, src - 8, 128 * 1024)
        m = net.run(max_us=20_000)
        assert m.p50_fct_us <= m.p99_fct_us <= m.max_fct_us

    def test_empty_metrics_are_inf(self):
        m = RunMetrics()
        assert m.max_fct_us == float("inf")
        assert m.avg_fct_us == float("inf")
        assert m.percentile_fct_us(50) == float("inf")

    def test_summary_renders(self, net):
        net.add_flow(0, 4, 64 * 1024)
        m = net.run()
        s = m.summary()
        assert "flows 1/1" in s

    def test_makespan_covers_last_flow(self, net):
        net.add_flow(0, 4, 64 * 1024)
        net.add_flow(1, 5, 64 * 1024, start_us=100.0)
        m = net.run()
        assert m.makespan_us > 100.0


class TestSeriesRecorder:
    def test_records_buckets(self):
        net = small_network()
        rec = net.record_ports(net.tree.t0s[0].up_ports, bucket_us=5.0)
        net.add_flow(0, 4, 2 << 20)
        net.run(max_us=10_000)
        assert len(rec.times_us) >= 2
        total = sum(sum(v) for v in rec.util_gbps.values())
        assert total > 0

    def test_utilization_bounded_by_line_rate(self):
        net = small_network()
        rec = net.record_ports(net.tree.t0s[0].up_ports, bucket_us=5.0)
        net.add_flow(0, 4, 4 << 20)
        net.run(max_us=20_000)
        for series in rec.util_gbps.values():
            assert all(v <= 400.0 * 1.01 for v in series)

    def test_queue_series_nonnegative(self):
        net = small_network(n_hosts=16, hosts_per_t0=8)
        rec = net.record_ports(net.tree.t0s[0].up_ports, bucket_us=5.0)
        for src in range(8):
            if src != 0:
                net.add_flow(src, 8 + src, 1 << 20)
        net.run(max_us=20_000)
        for series in rec.queue_kb.values():
            assert all(v >= 0 for v in series)

    def test_spread_metric(self):
        net = small_network()
        rec = net.record_ports(net.tree.t0s[0].up_ports, bucket_us=5.0)
        net.add_flow(0, 4, 2 << 20)
        net.run(max_us=20_000)
        assert rec.utilization_spread() >= 0
        assert rec.max_queue_kb() >= 0
