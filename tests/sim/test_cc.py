"""Congestion-control algorithms."""

from __future__ import annotations

import pytest

from repro.sim.cc import available, make_cc
from repro.sim.cc.dctcp import DctcpCc
from repro.sim.cc.eqds import EqdsCc
from repro.sim.cc.internal import InternalCc

MTU = 4096
BDP = 100 * MTU
RTT = 8_000_000  # 8 us


def mk(name: str):
    return make_cc(name, mtu=MTU, init_cwnd=BDP, min_cwnd=MTU,
                   max_cwnd=2 * BDP, rtt_ps=RTT)


class TestRegistry:
    def test_all_three_registered(self):
        assert {"dctcp", "eqds", "internal"} <= set(available())

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            mk("bbr")

    def test_factory_builds_right_types(self):
        assert isinstance(mk("dctcp"), DctcpCc)
        assert isinstance(mk("eqds"), EqdsCc)
        assert isinstance(mk("internal"), InternalCc)


class TestDctcp:
    def test_clean_acks_grow_additively(self):
        cc = mk("dctcp")
        start = cc.cwnd
        for _ in range(100):
            cc.on_ack(MTU, ecn=False, now=0)
        assert start < cc.cwnd <= 2 * BDP

    def test_marked_acks_shrink(self):
        cc = mk("dctcp")
        for _ in range(50):  # drive alpha up and shrink
            cc.on_ack(MTU, ecn=True, now=0)
        assert cc.cwnd < BDP

    def test_alpha_tracks_ecn_fraction(self):
        cc = mk("dctcp")
        for _ in range(200):
            cc.on_ack(MTU, ecn=True, now=0)
        assert cc.alpha > 0.9
        for _ in range(200):
            cc.on_ack(MTU, ecn=False, now=0)
        assert cc.alpha < 0.1

    def test_drop_costs_one_mtu(self):
        """Sec. 4.1: 'reduces the congestion window by one MTU'."""
        cc = mk("dctcp")
        before = cc.cwnd
        cc.on_timeout(now=0)
        assert cc.cwnd == before - MTU
        cc.on_nack(now=0)
        assert cc.cwnd == before - 2 * MTU

    def test_floor_at_min_cwnd(self):
        cc = mk("dctcp")
        for _ in range(1000):
            cc.on_timeout(now=0)
        assert cc.cwnd == MTU
        assert cc.cwnd_pkts == 1

    def test_cap_at_max_cwnd(self):
        cc = mk("dctcp")
        for _ in range(100_000):
            cc.on_ack(MTU, ecn=False, now=0)
        assert cc.cwnd == 2 * BDP


class TestEqds:
    def test_window_fixed_under_ecn(self):
        cc = mk("eqds")
        before = cc.cwnd
        for _ in range(100):
            cc.on_ack(MTU, ecn=True, now=0)
        assert cc.cwnd == before

    def test_timeout_halves_and_recovers_to_target(self):
        cc = mk("eqds")
        cc.on_timeout(now=0)
        assert cc.cwnd == pytest.approx(BDP / 2)
        for _ in range(20_000):
            cc.on_ack(MTU, ecn=False, now=0)
        assert cc.cwnd == BDP  # the fixed window, not max_cwnd


class TestInternal:
    def _round(self, cc, n_acks, ecn_frac, start_now):
        """Feed one RTT round of ACKs, the last one past the round edge."""
        n_ecn = int(n_acks * ecn_frac)
        for i in range(n_acks):
            now = start_now + (i * RTT) // (n_acks - 1) if n_acks > 1 \
                else start_now + RTT
            cc.on_ack(MTU, ecn=i < n_ecn, now=now)

    def test_clean_round_grows(self):
        cc = mk("internal")
        before = cc.cwnd
        self._round(cc, 50, 0.0, 0)
        assert cc.cwnd == before + MTU

    def test_congested_round_shrinks(self):
        cc = mk("internal")
        before = cc.cwnd
        self._round(cc, 50, 0.5, 0)
        assert cc.cwnd < before

    def test_timeout_halves(self):
        cc = mk("internal")
        cc.on_timeout(now=0)
        assert cc.cwnd == pytest.approx(BDP / 2)

    def test_never_below_floor(self):
        cc = mk("internal")
        for _ in range(100):
            cc.on_timeout(now=0)
        assert cc.cwnd == MTU


class TestClampGeneric:
    @pytest.mark.parametrize("name", ["dctcp", "eqds", "internal"])
    def test_cwnd_pkts_at_least_one(self, name):
        cc = mk(name)
        for _ in range(500):
            cc.on_timeout(now=0)
            cc.on_nack(now=0)
        assert cc.cwnd_pkts >= 1
