"""Packet construction, ACK/NACK echoing, trimming."""

from __future__ import annotations

from repro.sim.packet import (
    CONTROL_PACKET_BYTES,
    Packet,
    make_ack,
    make_nack,
)


def data_pkt(**kw) -> Packet:
    defaults = dict(src=1, dst=2, flow_id=3, seq=4, size=4096, ev=55)
    defaults.update(kw)
    return Packet(**defaults)


class TestPacket:
    def test_data_packet_defaults(self):
        p = data_pkt()
        assert not p.is_ack and not p.is_nack and not p.trimmed
        assert not p.ecn
        assert not p.is_control

    def test_trim_truncates_to_header(self):
        p = data_pkt()
        p.trim()
        assert p.trimmed
        assert p.size == CONTROL_PACKET_BYTES
        assert p.is_control

    def test_control_priority_kinds(self):
        assert make_ack(data_pkt()).is_control
        assert make_nack(data_pkt()).is_control


class TestAck:
    def test_ack_reverses_direction(self):
        ack = make_ack(data_pkt(src=7, dst=9))
        assert (ack.src, ack.dst) == (9, 7)

    def test_ack_echoes_ev(self):
        """Sec. 3.1: the ACK reuses the data packet's EV for its header."""
        ack = make_ack(data_pkt(ev=1234))
        assert ack.ev == 1234

    def test_ack_echoes_ecn(self):
        p = data_pkt()
        p.ecn = True
        assert make_ack(p).ecn is True
        p2 = data_pkt()
        assert make_ack(p2).ecn is False

    def test_ack_is_64_bytes(self):
        assert make_ack(data_pkt()).size == CONTROL_PACKET_BYTES

    def test_coalesced_ack_carries_seqs_and_echoes(self):
        ack = make_ack(data_pkt(), acked_seqs=[1, 2, 3],
                       ev_echoes=[(5, False), (6, True)])
        assert ack.acked_seqs == [1, 2, 3]
        assert ack.ev_echoes == [(5, False), (6, True)]


class TestNack:
    def test_nack_reverses_and_echoes(self):
        p = data_pkt(src=3, dst=8, ev=77, seq=21)
        p.trim()
        nack = make_nack(p)
        assert (nack.src, nack.dst) == (8, 3)
        assert nack.ev == 77
        assert nack.seq == 21
        assert nack.is_nack and not nack.is_ack
