"""Failure injection semantics."""

from __future__ import annotations

from repro.sim.network import Network, NetworkConfig
from repro.sim.topology import TopologyParams

from helpers import small_network

US = 1_000_000


class TestCableFailure:
    def test_transient_failure_recovers(self):
        net = small_network()
        cable = net.tree.t0_uplink_cables()[0]
        net.failures.fail_cable(cable, at_ps=10 * US, duration_ps=20 * US)
        net.engine.run(until_ps=15 * US)
        assert cable.down
        net.engine.run(until_ps=40 * US)
        assert not cable.down

    def test_permanent_failure(self):
        net = small_network()
        cable = net.tree.t0_uplink_cables()[0]
        net.failures.fail_cable(cable, at_ps=10 * US)
        net.engine.run(until_ps=1000 * US)
        assert cable.down

    def test_by_name(self):
        net = small_network()
        name = next(iter(net.tree.cables))
        net.failures.fail_cable(name, at_ps=0)
        net.engine.run(until_ps=1)
        assert net.tree.cables[name].down

    def test_log_records_injections(self):
        net = small_network()
        net.failures.fail_cable(net.tree.t0_uplink_cables()[0], at_ps=0)
        assert net.failures.log[0][0] == "cable"


class TestSwitchFailure:
    def test_kills_all_attached_cables(self):
        net = small_network()
        t1 = net.tree.t1s[0]
        cables = net.tree.cables_of_switch(t1)
        assert cables
        net.failures.fail_switch(t1, at_ps=0)
        net.engine.run(until_ps=1)
        assert all(c.down for c in cables)

    def test_other_switch_unaffected(self):
        net = small_network()
        net.failures.fail_switch(net.tree.t1s[0], at_ps=0)
        net.engine.run(until_ps=1)
        others = net.tree.cables_of_switch(net.tree.t1s[1])
        assert all(not c.down for c in others)


class TestDegradation:
    def test_rate_change_both_directions(self):
        net = small_network()
        cable = net.tree.t0_uplink_cables()[0]
        net.failures.degrade_cable(cable, 200.0, at_ps=0)
        assert cable.a_port.rate_gbps == 200.0
        assert cable.b_port.rate_gbps == 200.0

    def test_scheduled_restore(self):
        net = small_network()
        cable = net.tree.t0_uplink_cables()[0]
        net.failures.degrade_cable(cable, 200.0, at_ps=10 * US,
                                   duration_ps=10 * US)
        net.engine.run(until_ps=15 * US)
        assert cable.a_port.rate_gbps == 200.0
        net.engine.run(until_ps=25 * US)
        assert cable.a_port.rate_gbps == 400.0


class TestBer:
    def test_immediate_and_scheduled(self):
        net = small_network()
        c0, c1 = net.tree.t0_uplink_cables()[:2]
        net.failures.set_ber(c0, 0.01)
        net.failures.set_ber(c1, 0.02, at_ps=10 * US)
        assert c0.ber == 0.01
        assert c1.ber == 0.0
        net.engine.run(until_ps=11 * US)
        assert c1.ber == 0.02

    def test_switch_ber_covers_all_cables(self):
        net = small_network()
        t1 = net.tree.t1s[0]
        net.failures.set_switch_ber(t1, 0.05)
        for c in net.tree.cables_of_switch(t1):
            assert c.ber == 0.05


class TestRoutingUpdate:
    def test_ecmp_group_excludes_after_delay(self):
        net = Network(NetworkConfig(
            topo=TopologyParams(n_hosts=8, hosts_per_t0=4),
            lb="ops", routing_update_delay_us=50.0))
        cable = net.tree.t0_uplink_cables()[0]
        net.failures.fail_cable(cable, at_ps=0)
        net.engine.run(until_ps=10 * US)
        assert not cable.a_port.excluded, "before the control-plane update"
        net.engine.run(until_ps=60 * US)
        assert cable.a_port.excluded

    def test_no_exclusion_without_delay_config(self):
        net = small_network(lb="ops")
        cable = net.tree.t0_uplink_cables()[0]
        net.failures.fail_cable(cable, at_ps=0)
        net.engine.run(until_ps=100 * US)
        assert not cable.a_port.excluded

    def test_recovery_clears_exclusion(self):
        net = Network(NetworkConfig(
            topo=TopologyParams(n_hosts=8, hosts_per_t0=4),
            lb="ops", routing_update_delay_us=10.0))
        cable = net.tree.t0_uplink_cables()[0]
        net.failures.fail_cable(cable, at_ps=0, duration_ps=50 * US)
        net.engine.run(until_ps=20 * US)
        assert cable.a_port.excluded
        net.engine.run(until_ps=60 * US)
        assert not cable.a_port.excluded

    def test_update_skipped_if_recovered_first(self):
        net = Network(NetworkConfig(
            topo=TopologyParams(n_hosts=8, hosts_per_t0=4),
            lb="ops", routing_update_delay_us=100.0))
        cable = net.tree.t0_uplink_cables()[0]
        net.failures.fail_cable(cable, at_ps=0, duration_ps=10 * US)
        net.engine.run(until_ps=200 * US)
        assert not cable.a_port.excluded
