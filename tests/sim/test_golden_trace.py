"""Golden event-trace determinism.

Three small end-to-end scenarios — a symmetric spray, an incast with
trimming, and an RTO run under a cable failure — are traced at every
host's dispatch point and hashed.  The committed SHA-256 digests were
captured from the pre-time-wheel binary-heap engine, so these tests pin
the scheduler rewrite (and any future hot-path work) to **bit-identical
event order**: same arrival times, same EV draws, same ECN marks, same
ACK interleavings.

Everything downstream rests on this — the sweep harness's content-keyed
artifact cache, serial==parallel backend equivalence, and ``repro
figures trend --strict`` against the committed campaign all assume the
simulator is a pure function of its configuration.

If a change *intends* to alter event order (a protocol or model change),
recapture: each scenario's trace is printed on failure head-first, and
the new digests belong in this file alongside a CHANGES.md note.
"""

from __future__ import annotations

import hashlib

from repro.sim.network import Network, NetworkConfig
from repro.sim.topology import TopologyParams
from repro.sim.units import us_to_ps

#: digests captured from the seed engine (binary heap, eager timers)
GOLDEN = {
    "spray": ("e7c911f9ae9c7c58eb75eeafdc6c29b2"
              "4013b600b622fbdfc24469a0095c0001", 256),
    "trim": ("df15c17691fa9504c7ff9213260b1e98"
             "efc3b0029c00af22f4ffa5bbb143f249", 103),
    "rto": ("e3eafb6fe3682470b12ae7a0210d5cfc"
            "ca7cfdcc204927e8d76167a60be624a7", 439),
    # the arena policies, captured at their introduction: any later
    # change to their EV draws or replication plumbing must recapture
    "repflow": ("c721fbe78b03092f33a6f6b280002751"
                "667d51df3e4e549138d451df9c562246", 362),
    "prime": ("444ff2e2f45bdce36be8217b725ebcd3"
              "e0a8d479384e2c94627fb157eb75be7e", 256),
    "sprinklers": ("9986c99c49c429e9939a927119b73b75"
                   "041b22f48382bd52ec2824dc254ca5c3", 256),
}


def _traced(cfg):
    """Wrap every host's dispatch to record each packet's arrival."""
    net = Network(cfg)
    trace = []
    for host in net.tree.hosts:
        inner = host.dispatch

        def wrap(pkt, _inner=inner, _eng=net.engine):
            kind = ("ack" if pkt.is_ack else "nack" if pkt.is_nack
                    else "trim" if pkt.trimmed else "data")
            trace.append((_eng.now, pkt.flow_id, pkt.seq, kind, pkt.ev,
                          int(pkt.ecn)))
            _inner(pkt)

        host.dispatch = wrap
    return net, trace


def golden_spray():
    cfg = NetworkConfig(
        topo=TopologyParams(n_hosts=8, hosts_per_t0=4, link_gbps=100.0),
        lb="reps", seed=7)
    net, trace = _traced(cfg)
    for s in range(8):
        net.add_flow(s, (s + 4) % 8, 64 * 1024)
    net.run(max_us=20_000.0)
    return trace


def golden_trim():
    cfg = NetworkConfig(
        topo=TopologyParams(n_hosts=8, hosts_per_t0=4, link_gbps=100.0,
                            trim_enabled=True),
        lb="ops", seed=11, ack_coalesce=4)
    net, trace = _traced(cfg)
    for s in range(1, 8):
        net.add_flow(s, 0, 32 * 1024)
    net.run(max_us=20_000.0)
    return trace


def golden_rto():
    cfg = NetworkConfig(
        topo=TopologyParams(n_hosts=8, hosts_per_t0=4, link_gbps=100.0),
        lb="reps", seed=3, routing_update_delay_us=200.0)
    net, trace = _traced(cfg)
    net.failures.fail_cable(net.tree.t0_uplink_cables()[0],
                            at_ps=us_to_ps(5.0))
    for s in range(8):
        net.add_flow(s, (s + 4) % 8, 96 * 1024)
    net.run(max_us=50_000.0)
    return trace


def _golden_policy(lb, seed, msg_bytes):
    cfg = NetworkConfig(
        topo=TopologyParams(n_hosts=8, hosts_per_t0=4, link_gbps=100.0),
        lb=lb, seed=seed)
    net, trace = _traced(cfg)
    for s in range(8):
        net.add_flow(s, (s + 4) % 8, msg_bytes)
    net.run(max_us=20_000.0)
    return trace


def golden_repflow():
    # 48 KiB < the RepFlow threshold: both copies of every flow are
    # live, so the trace pins the replication machinery too
    return _golden_policy("repflow", seed=13, msg_bytes=48 * 1024)


def golden_prime():
    return _golden_policy("prime", seed=17, msg_bytes=64 * 1024)


def golden_sprinklers():
    return _golden_policy("sprinklers", seed=19, msg_bytes=64 * 1024)


_SCENARIOS = {"spray": golden_spray, "trim": golden_trim,
              "rto": golden_rto, "repflow": golden_repflow,
              "prime": golden_prime, "sprinklers": golden_sprinklers}


def _check(name):
    trace = _SCENARIOS[name]()
    digest = hashlib.sha256(repr(trace).encode()).hexdigest()
    want_digest, want_n = GOLDEN[name]
    assert len(trace) == want_n, (
        f"{name}: trace length {len(trace)} != {want_n}; "
        f"head={trace[:5]}")
    assert digest == want_digest, (
        f"{name}: event trace diverged from the golden capture "
        f"(sha256 {digest}); the simulator is no longer bit-identical "
        f"to the committed baseline.  head={trace[:5]} "
        f"tail={trace[-5:]}")


def test_golden_spray_trace():
    _check("spray")


def test_golden_trim_trace():
    _check("trim")


def test_golden_rto_trace():
    _check("rto")


def test_golden_repflow_trace():
    _check("repflow")


def test_golden_prime_trace():
    _check("prime")


def test_golden_sprinklers_trace():
    _check("sprinklers")


def test_traces_are_reproducible_in_process():
    """Two in-process runs of the same scenario are identical — no
    hidden global state leaks between Network instances."""
    assert golden_spray() == golden_spray()
