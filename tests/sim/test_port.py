"""Egress port: queueing, ECN marking, drops, trimming, priority."""

from __future__ import annotations

import random

import pytest

from repro.sim.engine import Engine
from repro.sim.link import Cable
from repro.sim.packet import CONTROL_PACKET_BYTES, Packet, make_ack
from repro.sim.port import EgressPort
from repro.sim.switch import Node
from repro.sim.units import NS, tx_time_ps


class Sink(Node):
    """Terminates a wire and records arrivals."""

    def __init__(self) -> None:
        self.received = []

    def receive(self, pkt) -> None:
        self.received.append(pkt)


def make_port(engine, *, rate=400.0, capacity=64 * 1024,
              kmin=None, kmax=None, trim=False, ecn=True,
              latency_ns=500, seed=1, ctrl_cap=None):
    kwargs = {} if ctrl_cap is None else \
        {"ctrl_capacity_bytes": ctrl_cap}
    port = EgressPort(
        engine, "p", rate_gbps=rate, latency_ps=latency_ns * NS,
        capacity_bytes=capacity,
        kmin_bytes=kmin if kmin is not None else capacity // 5,
        kmax_bytes=kmax if kmax is not None else capacity * 4 // 5,
        rng=random.Random(seed), ecn_enabled=ecn, trim_enabled=trim,
        **kwargs,
    )
    sink = Sink()
    port.peer = sink
    cable = Cable("c")
    cable.attach(port, EgressPort(
        engine, "rev", rate_gbps=rate, latency_ps=latency_ns * NS,
        capacity_bytes=capacity, kmin_bytes=1, kmax_bytes=2,
        rng=random.Random(seed)))
    return port, sink, cable


def dpkt(seq=0, size=4096, ev=1):
    return Packet(src=0, dst=1, flow_id=0, seq=seq, size=size, ev=ev)


class TestTransmission:
    def test_single_packet_delivered_after_tx_plus_latency(self, engine):
        port, sink, _ = make_port(engine)
        port.enqueue(dpkt(size=4096))
        engine.run()
        assert len(sink.received) == 1
        # 4096 B at 400 Gbps = 81.92 ns, + 500 ns wire
        assert engine.now == tx_time_ps(4096, 400) + 500 * NS

    def test_fifo_order(self, engine):
        port, sink, _ = make_port(engine)
        for seq in range(5):
            port.enqueue(dpkt(seq=seq))
        engine.run()
        assert [p.seq for p in sink.received] == list(range(5))

    def test_serialization_spacing(self, engine):
        """Back-to-back packets are spaced by their serialization time."""
        port, sink, _ = make_port(engine)
        arrivals = []
        sink.receive = lambda p: arrivals.append(engine.now)
        port.enqueue(dpkt(0))
        port.enqueue(dpkt(1))
        engine.run()
        assert arrivals[1] - arrivals[0] == tx_time_ps(4096, 400)

    def test_rate_change_affects_next_packet(self, engine):
        port, sink, _ = make_port(engine, rate=400)
        arrivals = []
        sink.receive = lambda p: arrivals.append(engine.now)
        port.enqueue(dpkt(0))
        port.rate_gbps = 200.0
        port.enqueue(dpkt(1))
        engine.run()
        # second packet serialized at 200G: double the gap
        assert arrivals[1] - arrivals[0] == tx_time_ps(4096, 200)

    def test_bytes_counted(self, engine):
        port, _, _ = make_port(engine)
        port.enqueue(dpkt(size=1000))
        port.enqueue(dpkt(size=2000))
        engine.run()
        assert port.stats.bytes_tx == 3000
        assert port.stats.pkts_tx == 2


class TestDrops:
    def test_overflow_drops_tail(self, engine):
        port, sink, _ = make_port(engine, capacity=8192)
        for seq in range(5):  # 1 in service + 2 queued fit; rest drop
            port.enqueue(dpkt(seq=seq))
        engine.run()
        assert port.stats.drops_overflow == 2
        assert len(sink.received) == 3

    def test_on_drop_hook_called(self, engine):
        port, _, _ = make_port(engine, capacity=4096)
        dropped = []
        port.on_drop = dropped.append
        for seq in range(4):
            port.enqueue(dpkt(seq=seq))
        engine.run()
        assert [p.seq for p in dropped] == [2, 3]

    def test_link_down_drops_at_tx(self, engine):
        port, sink, cable = make_port(engine)
        cable.fail()
        port.enqueue(dpkt())
        engine.run()
        assert sink.received == []
        assert port.stats.drops_link_down == 1

    def test_link_down_mid_flight_drops(self, engine):
        port, sink, cable = make_port(engine, latency_ns=1000)
        port.enqueue(dpkt())
        # fail after serialization completes but before delivery
        engine.at(tx_time_ps(4096, 400) + 1, cable.fail)
        engine.run()
        assert sink.received == []
        assert port.stats.drops_link_down == 1

    def test_recovered_link_delivers(self, engine):
        port, sink, cable = make_port(engine)
        cable.fail()
        cable.recover()
        port.enqueue(dpkt())
        engine.run()
        assert len(sink.received) == 1

    def test_ber_drops_fraction(self, engine):
        port, sink, cable = make_port(engine, capacity=1 << 30, seed=3)
        cable.ber = 0.5
        for seq in range(400):
            port.enqueue(dpkt(seq=seq, size=64))
        engine.run()
        assert 100 < port.stats.drops_ber < 300
        assert len(sink.received) == 400 - port.stats.drops_ber


class TestEcnMarking:
    def test_no_marking_below_kmin(self, engine):
        port, sink, _ = make_port(engine, capacity=100 * 4096,
                                  kmin=20 * 4096, kmax=80 * 4096)
        for seq in range(10):
            port.enqueue(dpkt(seq=seq))
        engine.run()
        assert port.stats.ecn_marks == 0
        assert not any(p.ecn for p in sink.received)

    def test_full_marking_above_kmax(self, engine):
        port, sink, _ = make_port(engine, capacity=100 * 4096,
                                  kmin=4096, kmax=2 * 4096)
        for seq in range(20):
            port.enqueue(dpkt(seq=seq))
        engine.run()
        # everything enqueued while occupancy >= kmax must be marked
        marked = [p for p in sink.received if p.ecn]
        assert len(marked) >= 17

    def test_linear_region_marks_probabilistically(self, engine):
        port, sink, _ = make_port(engine, capacity=1 << 30,
                                  kmin=10 * 4096, kmax=200 * 4096, seed=5)
        for seq in range(100):
            port.enqueue(dpkt(seq=seq))
        engine.run()
        marked = sum(1 for p in sink.received if p.ecn)
        assert 0 < marked < 100

    def test_ecn_disabled_never_marks(self, engine):
        port, sink, _ = make_port(engine, capacity=1 << 30, ecn=False,
                                  kmin=0, kmax=1)
        for seq in range(50):
            port.enqueue(dpkt(seq=seq))
        engine.run()
        assert port.stats.ecn_marks == 0

    def test_acks_never_marked(self, engine):
        """Control packets ride the priority queue and skip marking."""
        port, sink, _ = make_port(engine, capacity=1 << 30, kmin=0, kmax=1)
        for _ in range(20):
            port.enqueue(make_ack(dpkt()))
        engine.run()
        assert not any(p.ecn for p in sink.received)


class TestTrimming:
    def test_overflow_trims_instead_of_drops(self, engine):
        port, sink, _ = make_port(engine, capacity=8192, trim=True)
        for seq in range(5):
            port.enqueue(dpkt(seq=seq))
        engine.run()
        assert port.stats.drops_overflow == 0
        assert port.stats.trims == 2
        trimmed = [p for p in sink.received if p.trimmed]
        assert len(trimmed) == 2
        assert all(p.size == CONTROL_PACKET_BYTES for p in trimmed)

    def test_trimmed_packets_get_priority(self, engine):
        """A trimmed header overtakes the queued data packets (NDP)."""
        port, sink, _ = make_port(engine, capacity=8192, trim=True)
        for seq in range(4):
            port.enqueue(dpkt(seq=seq))
        engine.run()
        kinds = [(p.seq, p.trimmed) for p in sink.received]
        assert kinds[0][0] == 0  # in-service packet finishes first
        assert kinds[1] == (3, True)  # the trim jumps ahead of seqs 1, 2


class TestControlPriority:
    def test_ack_overtakes_data_backlog(self, engine):
        port, sink, _ = make_port(engine, capacity=1 << 30)
        for seq in range(10):
            port.enqueue(dpkt(seq=seq))
        ack = make_ack(dpkt(seq=99))
        port.enqueue(ack)
        engine.run()
        order = [(p.is_ack, p.seq) for p in sink.received]
        # ack transmitted right after the in-service data packet
        assert order[1] == (True, 99)

    def test_queue_bytes_excludes_control(self, engine):
        port, _, _ = make_port(engine, capacity=1 << 30)
        port.enqueue(dpkt(0))  # enters service
        port.enqueue(dpkt(1))  # waits
        port.enqueue(make_ack(dpkt(2)))
        assert port.queue_bytes == 4096
        assert port.total_queue_bytes == 4096 + CONTROL_PACKET_BYTES


class TestControlQueueCapacity:
    def test_acks_drop_when_control_queue_full(self, engine):
        # room for exactly two queued 64 B control packets
        port, sink, _ = make_port(engine,
                                  ctrl_cap=2 * CONTROL_PACKET_BYTES)
        for seq in range(5):  # 1 in service + 2 queued fit; rest drop
            port.enqueue(make_ack(dpkt(seq=seq)))
        engine.run()
        assert port.stats.drops_overflow == 2
        assert len(sink.received) == 3

    def test_trimmed_header_respects_control_capacity(self, engine):
        """Regression: trimmed headers were appended to the control
        queue unconditionally, bypassing its capacity check — a full
        control queue must drop the overflowing data packet instead."""
        port, sink, _ = make_port(engine, capacity=8192, trim=True,
                                  ctrl_cap=CONTROL_PACKET_BYTES)
        for seq in range(5):
            port.enqueue(dpkt(seq=seq))
        engine.run()
        # seq 0 in service, 1-2 queued; seq 3 trims into the one control
        # slot; seq 4's header would overflow it -> dropped, not trimmed
        assert port.stats.trims == 1
        assert port.stats.drops_overflow == 1
        assert sum(1 for p in sink.received if p.trimmed) == 1

    def test_burst_matches_per_packet_decisions(self, engine):
        """enqueue_burst must take the identical drop/trim decisions."""
        a = make_port(engine, capacity=8192, trim=True,
                      ctrl_cap=CONTROL_PACKET_BYTES)[0]
        b = make_port(engine, capacity=8192, trim=True,
                      ctrl_cap=CONTROL_PACKET_BYTES)[0]
        for seq in range(5):
            a.enqueue(dpkt(seq=seq))
        b.enqueue_burst([dpkt(seq=seq) for seq in range(5)])
        assert (a.stats.trims, a.stats.drops_overflow) == \
            (b.stats.trims, b.stats.drops_overflow) == (1, 1)


class TestDegenerateEcnThresholds:
    def test_kmin_equal_kmax_is_hard_threshold(self, engine):
        """Regression: ``kmin == kmax`` divided by zero in the linear
        marking formula; it must act as a hard threshold instead."""
        port, sink, _ = make_port(engine, capacity=100 * 4096,
                                  kmin=2 * 4096, kmax=2 * 4096)
        for seq in range(6):
            port.enqueue(dpkt(seq=seq))
        engine.run()
        # occupancy at enqueue: 0, 0, 4096, 8192, 8192*... -> marks
        # exactly when occupancy >= kmax, deterministically
        marks = [p.ecn for p in sink.received]
        assert marks == [False, False, False, True, True, True]

    def test_kmin_above_kmax_rejected(self, engine):
        with pytest.raises(ValueError, match="kmin"):
            make_port(engine, kmin=4096, kmax=1024)

    def test_negative_kmin_rejected(self, engine):
        with pytest.raises(ValueError, match="kmin"):
            make_port(engine, kmin=-1, kmax=1024)
