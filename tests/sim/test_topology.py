"""Fat-tree construction invariants (2- and 3-tier)."""

from __future__ import annotations

import pytest

from repro.sim.engine import Engine
from repro.sim.topology import FatTree, TopologyParams


def build(**kw) -> FatTree:
    params = TopologyParams(**kw)
    return FatTree(Engine(), params)


class TestValidation:
    def test_hosts_must_divide(self):
        with pytest.raises(ValueError):
            build(n_hosts=10, hosts_per_t0=4)

    def test_oversub_must_divide(self):
        with pytest.raises(ValueError):
            build(n_hosts=16, hosts_per_t0=8, oversubscription=3)

    def test_tiers_bounds(self):
        with pytest.raises(ValueError):
            build(n_hosts=16, hosts_per_t0=8, tiers=4)

    def test_pods_must_divide(self):
        with pytest.raises(ValueError):
            build(n_hosts=24, hosts_per_t0=4, tiers=3, t0s_per_pod=4)


class TestTwoTier:
    def test_counts(self):
        tree = build(n_hosts=32, hosts_per_t0=8)
        assert len(tree.hosts) == 32
        assert len(tree.t0s) == 4
        assert len(tree.t1s) == 8  # 1:1 oversubscription: U = H
        assert len(tree.t2s) == 0

    def test_oversubscription_reduces_uplinks(self):
        tree = build(n_hosts=32, hosts_per_t0=8, oversubscription=4)
        assert len(tree.t1s) == 2
        assert all(len(t0.up_ports) == 2 for t0 in tree.t0s)

    def test_every_host_has_nic_port(self):
        tree = build(n_hosts=16, hosts_per_t0=8)
        assert all(h.port is not None for h in tree.hosts)

    def test_t0_down_routes_cover_local_hosts(self):
        tree = build(n_hosts=16, hosts_per_t0=8)
        assert set(tree.t0s[0].down_route) == set(range(8))
        assert set(tree.t0s[1].down_route) == set(range(8, 16))

    def test_t1_down_routes_cover_all_hosts(self):
        tree = build(n_hosts=16, hosts_per_t0=8)
        for t1 in tree.t1s:
            assert set(t1.down_route) == set(range(16))

    def test_host_nic_has_no_ecn_and_deep_queue(self):
        """Sender NIC queues are not fabric queues (see topology.py)."""
        tree = build(n_hosts=8, hosts_per_t0=4)
        for h in tree.hosts:
            assert not h.port.ecn_enabled
            assert h.port.capacity_bytes >= 1 << 30

    def test_cable_registry_complete(self):
        tree = build(n_hosts=16, hosts_per_t0=8)
        # 16 host cables + 2 T0s x 8 T1s
        assert len(tree.cables) == 16 + 16

    def test_uplink_cable_selector(self):
        tree = build(n_hosts=16, hosts_per_t0=8)
        ups = tree.t0_uplink_cables()
        assert len(ups) == 16
        assert all("t1" in c.name for c in ups)

    def test_cables_of_switch(self):
        tree = build(n_hosts=16, hosts_per_t0=8)
        t1 = tree.t1s[0]
        cables = tree.cables_of_switch(t1)
        assert len(cables) == 2  # one per T0

    def test_t0_of_host(self):
        tree = build(n_hosts=16, hosts_per_t0=8)
        assert tree.t0_of_host(3) is tree.t0s[0]
        assert tree.t0_of_host(12) is tree.t0s[1]


class TestThreeTier:
    def test_counts(self):
        tree = build(n_hosts=32, hosts_per_t0=4, tiers=3,
                     oversubscription=2, t0s_per_pod=2, t2s_per_t1=2)
        # 8 T0s, 4 pods, uplinks per T0 = 2 -> 2 T1s per pod = 8 T1s
        assert len(tree.t0s) == 8
        assert len(tree.t1s) == 8
        assert len(tree.t2s) == 4  # t1s_per_pod(2) * t2s_per_t1(2)

    def test_t1_down_routes_are_pod_local(self):
        tree = build(n_hosts=32, hosts_per_t0=4, tiers=3,
                     oversubscription=2, t0s_per_pod=2, t2s_per_t1=2)
        pod0_hosts = set(range(8))
        t1 = tree.t1s[0]
        assert set(t1.down_route) == pod0_hosts
        assert len(t1.up_ports) == 2

    def test_t2_down_routes_cover_everything(self):
        tree = build(n_hosts=32, hosts_per_t0=4, tiers=3,
                     oversubscription=2, t0s_per_pod=2, t2s_per_t1=2)
        for t2 in tree.t2s:
            assert set(t2.down_route) == set(range(32))

    def test_core_cables_selector(self):
        tree = build(n_hosts=32, hosts_per_t0=4, tiers=3,
                     oversubscription=2, t0s_per_pod=2, t2s_per_t1=2)
        assert len(tree.core_cables()) == 8 * 2  # each T1 x uplinks


class TestDerived:
    def test_rtt_reasonable(self):
        tree = build(n_hosts=16, hosts_per_t0=8)
        rtt_us = tree.rtt_ps() / 1e6
        assert 7.0 < rtt_us < 10.0  # 8 hops x 1 us + serialization

    def test_bdp_positive_and_scales_with_rate(self):
        fast = build(n_hosts=16, hosts_per_t0=8, link_gbps=400)
        slow = build(n_hosts=16, hosts_per_t0=8, link_gbps=100)
        assert fast.bdp_bytes() > 0
        # slower link, longer serialization, lower product overall
        assert slow.bdp_bytes() < fast.bdp_bytes()

    def test_queue_capacity_defaults_to_bdp(self):
        tree = build(n_hosts=16, hosts_per_t0=8)
        assert tree.queue_capacity() == max(tree.bdp_bytes(), 8 * 4096)

    def test_explicit_queue_capacity_respected(self):
        tree = build(n_hosts=16, hosts_per_t0=8,
                     queue_capacity_bytes=12345)
        assert tree.queue_capacity() == 12345

    def test_three_tier_rtt_longer(self):
        two = build(n_hosts=16, hosts_per_t0=8)
        three = build(n_hosts=16, hosts_per_t0=4, tiers=3,
                      oversubscription=2, t0s_per_pod=2, t2s_per_t1=1)
        assert three.rtt_ps() > two.rtt_ps()
