"""``FailureSpec.compose`` is order-independent (seed-driven property).

Fig. 8 combines failure modes by composing declarative specs; the
composition contract is that the *set* of scheduled failure events —
not the order the sub-specs were listed in — determines the run.  Each
sub-spec schedules its injections at its own instants, so as long as
two specs do not target the same instant, ``compose(a, b)`` and
``compose(b, a)`` must produce byte-identical result payloads.

The property is exercised with randomly drawn schedule pairs: the
kinds, targets, times and durations all come from a seeded RNG, with
the two specs drawn on disjoint time grids (a-times end in .3, b-times
in .7) so the property holds by construction, not by luck.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.harness.sweep import (
    FailureSpec,
    WorkloadSpec,
    execute_task,
    make_task,
    task_key,
)

TOPO = {"n_hosts": 8, "hosts_per_t0": 4}
#: big enough that the permutation is still in flight (tens of us)
#: when the injected failures land — the property must be exercised
#: on live traffic, not on an already-drained fabric
WORKLOAD = WorkloadSpec(kind="synthetic", pattern="permutation",
                        msg_bytes=256 * 1024)


def _grid_time(rng: random.Random, ending: float) -> float:
    """A microsecond instant on a 1us grid, offset by ``ending`` —
    two specs drawn with different endings can never collide."""
    return rng.randrange(1, 50) + ending


def _random_spec(rng: random.Random, ending: float) -> FailureSpec:
    kind = rng.choice(["cable_schedule", "tor_uplinks", "degrade"])
    if kind == "cable_schedule":
        events = tuple(
            (idx, _grid_time(rng, ending), float(rng.randrange(3, 20)))
            for idx in rng.sample(range(4), rng.randint(1, 2)))
        return FailureSpec.make("fail_cable_schedule", events=events)
    if kind == "tor_uplinks":
        return FailureSpec.make(
            "fail_tor_uplinks", tor=rng.randrange(2), keep=1,
            at_us=_grid_time(rng, ending),
            stagger_us=float(rng.randrange(1, 4) * 10))
    return FailureSpec.make(
        "degrade_cables",
        indices=tuple(rng.sample(range(4), rng.randint(1, 2))),
        gbps=float(rng.choice([100, 200])),
        at_us=_grid_time(rng, ending))


def _payload(failure: FailureSpec, seed: int) -> str:
    task = make_task("reps", TOPO, WORKLOAD, seed=seed,
                     failure=failure, max_us=20_000.0)
    payload = execute_task(task)
    # the content key hashes the spec *listing order* (distinct cache
    # entries by design) and the label names the failure kind; the
    # property is about the simulation results, not the bookkeeping
    payload.pop("key", None)
    if isinstance(payload.get("task"), dict):
        payload["task"].pop("label", None)
    return json.dumps(payload, sort_keys=True)


class TestComposeOrdering:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_either_order_same_payload(self, seed):
        rng = random.Random(seed)
        a = _random_spec(rng, ending=0.3)
        b = _random_spec(rng, ending=0.7)
        ab = _payload(FailureSpec.compose(a, b), seed=seed)
        bb = _payload(FailureSpec.compose(b, a), seed=seed)
        assert ab == bb, \
            f"compose({a.kind}, {b.kind}) payload depends on order"

    def test_three_way_permutations(self):
        rng = random.Random(99)
        a = _random_spec(rng, ending=0.1)
        b = _random_spec(rng, ending=0.3)
        c = _random_spec(rng, ending=0.7)
        reference = _payload(FailureSpec.compose(a, b, c), seed=99)
        for perm in ((b, c, a), (c, a, b), (c, b, a)):
            assert _payload(FailureSpec.compose(*perm),
                            seed=99) == reference

    def test_singleton_compose_matches_bare_spec(self):
        rng = random.Random(7)
        spec = _random_spec(rng, ending=0.3)
        assert _payload(FailureSpec.compose(spec), seed=7) == \
            _payload(spec, seed=7)


class TestComposeStructure:
    def test_compose_needs_a_spec(self):
        with pytest.raises(ValueError):
            FailureSpec.compose()

    def test_compose_rejects_non_specs(self):
        with pytest.raises(TypeError):
            FailureSpec.compose("fail_cables")  # type: ignore[arg-type]

    def test_orderings_are_distinct_cache_keys(self):
        # payload equality is a semantic property; the content-keyed
        # store still treats the two orderings as distinct tasks
        rng = random.Random(11)
        a = _random_spec(rng, ending=0.3)
        b = _random_spec(rng, ending=0.7)
        t_ab = make_task("reps", TOPO, WORKLOAD, seed=11,
                         failure=FailureSpec.compose(a, b))
        t_ba = make_task("reps", TOPO, WORKLOAD, seed=11,
                         failure=FailureSpec.compose(b, a))
        assert task_key(t_ab) != task_key(t_ba)
