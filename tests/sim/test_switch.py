"""Switch routing: ECMP hashing, adaptive and ideal modes."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from helpers import make_switch, pkt
from repro.sim.switch import Switch, ecmp_hash




class TestEcmpHash:
    def test_deterministic(self):
        assert ecmp_hash(1, 2, 3, 4) == ecmp_hash(1, 2, 3, 4)

    def test_sensitive_to_every_field(self):
        base = ecmp_hash(1, 2, 3, 4)
        assert ecmp_hash(9, 2, 3, 4) != base
        assert ecmp_hash(1, 9, 3, 4) != base
        assert ecmp_hash(1, 2, 9, 4) != base
        assert ecmp_hash(1, 2, 3, 9) != base

    def test_uniform_over_ports(self):
        """Distinct EVs spread near-uniformly (Sec. 2.2's requirement)."""
        n_ports = 8
        counts = Counter(ecmp_hash(5, 7, ev, 99) % n_ports
                         for ev in range(64 * 1024))
        expect = 64 * 1024 / n_ports
        for c in counts.values():
            assert abs(c - expect) / expect < 0.05


class TestEcmpRouting:
    def test_same_ev_same_port(self, engine):
        sw, ports = make_switch(engine)
        chosen = {sw.route(pkt(ev=42)) for _ in range(20)}
        assert len(chosen) == 1

    def test_down_route_takes_precedence(self, engine):
        sw, ports = make_switch(engine)
        down = ports[3]
        sw.down_route[100] = down
        assert sw.route(pkt(dst=100, ev=1)) is down

    def test_spraying_uses_all_ports(self, engine):
        sw, ports = make_switch(engine, n_up=8)
        used = {sw.route(pkt(ev=ev)).name for ev in range(256)}
        assert len(used) == 8

    def test_excluded_port_skipped(self, engine):
        sw, ports = make_switch(engine)
        ports[0].excluded = True
        for ev in range(256):
            assert sw.route(pkt(ev=ev)) is not ports[0]

    def test_all_excluded_falls_back_to_hashing(self, engine):
        sw, ports = make_switch(engine)
        for p in ports:
            p.excluded = True
        assert sw.route(pkt(ev=1)) in ports

    def test_no_uplinks_blackholes(self, engine):
        sw = Switch("t1", 1, salt=1, rng=random.Random(1))
        assert sw.route(pkt()) is None
        sw.receive(pkt())  # must not raise

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            Switch("x", 0, salt=1, rng=random.Random(1), mode="wat")


class TestAdaptiveMode:
    def test_prefers_shorter_queues(self, engine):
        """Power-of-two-choices: with one empty port and the rest deeply
        queued, the empty port wins far more often than 1/n."""
        sw, ports = make_switch(engine, mode="adaptive")
        for i, p in enumerate(ports):
            if i != 5:
                for _ in range(4):
                    p.enqueue(pkt())
        hits = sum(sw.route(pkt()) is ports[5] for _ in range(400))
        assert hits > 0.15 * 400  # ~2/n expected for pow-2 choices

    def test_failed_port_still_choosable(self, engine):
        """Adaptive RoCE has only local queue visibility: a dead but
        empty uplink still attracts traffic."""
        sw, ports = make_switch(engine, mode="adaptive")
        ports[0].cable.fail()
        for i, p in enumerate(ports):
            if i != 0:
                for _ in range(4):
                    p.enqueue(pkt())
        hits = sum(sw.route(pkt()) is ports[0] for _ in range(200))
        assert hits > 0


class TestIdealMode:
    def test_avoids_failed_cables(self, engine):
        sw, ports = make_switch(engine, mode="ideal")
        ports[2].cable.fail()
        for _ in range(50):
            assert sw.route(pkt()) is not ports[2]

    def test_all_failed_falls_back(self, engine):
        sw, ports = make_switch(engine, mode="ideal")
        for p in ports:
            p.cable.fail()
        assert sw.route(pkt()) in ports

    def test_least_loaded_among_healthy(self, engine):
        sw, ports = make_switch(engine, mode="ideal")
        ports[0].cable.fail()
        for i, p in enumerate(ports):
            if i > 1:
                p.enqueue(pkt())  # enters service: queue stays empty
                p.enqueue(pkt())  # actually queued
        assert sw.route(pkt()) is ports[1]
