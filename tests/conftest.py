"""Shared fixtures for the test suite.

``small_network`` lives in :mod:`helpers` (same directory) so test
modules can import it directly; the ``net`` fixture wraps it for the
common case.
"""

from __future__ import annotations

import random

import pytest

from helpers import small_network
from repro.core.reps import RepsConfig, RepsSender
from repro.sim.engine import Engine
from repro.sim.network import Network


@pytest.fixture
def engine() -> Engine:
    return Engine()


@pytest.fixture
def rng() -> random.Random:
    return random.Random(1234)


@pytest.fixture
def reps() -> RepsSender:
    """A REPS sender with a tiny EVS so collisions are testable."""
    return RepsSender(RepsConfig(evs_size=256), rng=random.Random(7))


@pytest.fixture
def net() -> Network:
    return small_network()
