"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.reps import RepsConfig, RepsSender
from repro.sim.engine import Engine
from repro.sim.network import Network, NetworkConfig
from repro.sim.topology import TopologyParams


@pytest.fixture
def engine() -> Engine:
    return Engine()


@pytest.fixture
def rng() -> random.Random:
    return random.Random(1234)


@pytest.fixture
def reps() -> RepsSender:
    """A REPS sender with a tiny EVS so collisions are testable."""
    return RepsSender(RepsConfig(evs_size=256), rng=random.Random(7))


def small_network(lb: str = "reps", *, n_hosts: int = 8,
                  hosts_per_t0: int = 4, seed: int = 1,
                  **cfg_kwargs) -> Network:
    """An 8-host, 2-ToR network — big enough for multipath, fast to run."""
    topo_kwargs = {}
    for key in ("tiers", "oversubscription", "trim_enabled", "mtu_bytes",
                "link_gbps", "host_link_gbps", "switch_mode",
                "t0s_per_pod", "t2s_per_t1", "queue_capacity_bytes"):
        if key in cfg_kwargs:
            topo_kwargs[key] = cfg_kwargs.pop(key)
    topo = TopologyParams(n_hosts=n_hosts, hosts_per_t0=hosts_per_t0,
                          **topo_kwargs)
    return Network(NetworkConfig(topo=topo, lb=lb, seed=seed, **cfg_kwargs))


@pytest.fixture
def net() -> Network:
    return small_network()
